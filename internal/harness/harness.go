// Package harness drives the full evaluation of Section 5: it compiles the
// ten benchmarks with the cost-driven SPT compiler, runs the baseline
// (single-core) and SPT (two-core) simulations, and regenerates the data
// behind every table and figure of the paper — Table 1 (machine
// configuration), Figure 6 (loop coverage vs. body size), Figure 7 (SPT
// loop number and coverage), Figure 8 (SPT loop speedup / fast-commit /
// misspeculation ratios), Figure 9 (program speedup with its
// execution/pipeline-stall/d-cache-stall breakdown) plus the Figure 1
// parser-loop statistics and the recovery/checker/SRB ablations implied by
// Table 1's "default" annotations.
package harness

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/arch"
	"repro/internal/artifact"
	"repro/internal/bench"
	"repro/internal/compiler"
	"repro/internal/guard"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/multispec"
	"repro/internal/nativecap"
	"repro/internal/opt"
	"repro/internal/profiler"
	"repro/internal/trace"
)

// workSem is the process-wide work-slot semaphore: every leaf evaluation
// (one benchmark pipeline, one sweep variant) holds a slot while it runs,
// so arbitrarily nested fan-out (suite sweeps of ablation sweeps) never
// oversubscribes the machine. Only leaves acquire slots — coordinator
// goroutines stay out of the semaphore, which makes nested acquisition
// (and hence deadlock) impossible.
var workSem = make(chan struct{}, runtime.GOMAXPROCS(0))

// acquireWork claims a work slot and returns its release function.
func acquireWork() func() {
	workSem <- struct{}{}
	return func() { <-workSem }
}

// BenchRun is the complete evaluation of one benchmark.
type BenchRun struct {
	Name     string
	Compile  *compiler.Result
	Baseline *arch.RunStats
	SPT      *arch.RunStats

	// RetriedScale is non-zero when a budget-exceeded stage forced the
	// guarded harness to rerun the benchmark at this reduced scale.
	RetriedScale int
}

// Speedup returns baseline cycles / SPT cycles. Incomplete runs (a stage
// failed or was skipped) report 1 rather than dereferencing nil stats.
func (r *BenchRun) Speedup() float64 {
	if r == nil || r.Baseline == nil || r.SPT == nil || r.SPT.Cycles == 0 {
		return 1
	}
	return float64(r.Baseline.Cycles) / float64(r.SPT.Cycles)
}

// RunBenchmark evaluates one benchmark at the given scale under the given
// machine configuration.
func RunBenchmark(name string, scale int, cfg arch.Config) (*BenchRun, error) {
	return RunBenchmarkCached(name, scale, cfg, nil)
}

// RunBenchmarkCached is RunBenchmark through an artifact cache: the
// generated program, its compilation, and both simulations are memoized so
// sweeps revisiting the same point reuse them. A nil cache computes
// everything directly.
func RunBenchmarkCached(name string, scale int, cfg arch.Config, cache *artifact.Cache) (*BenchRun, error) {
	orig, err := benchProgram(cache, name, scale)
	if err != nil {
		return nil, err
	}
	cres, err := compileBench(cache, name, orig, func(p *ir.Program, o compiler.Options) (*compiler.Result, error) {
		return compiler.Compile(p, o)
	})
	if err != nil {
		return nil, fmt.Errorf("harness: %s: %w", name, err)
	}
	base, err := cache.Simulate(orig, baselineOf(cfg), func() (*arch.RunStats, error) {
		return simulateRecorded(context.Background(), cache, nil, orig, baselineOf(cfg))
	})
	if err != nil {
		return nil, fmt.Errorf("harness: %s baseline: %w", name, err)
	}
	spt, err := cache.Simulate(cres.Program, cfg, func() (*arch.RunStats, error) {
		return simulateRecorded(context.Background(), cache, nil, cres.Program, cfg)
	})
	if err != nil {
		return nil, fmt.Errorf("harness: %s spt: %w", name, err)
	}
	return &BenchRun{Name: name, Compile: cres, Baseline: base, SPT: spt}, nil
}

// CompileBenchmarkCached builds and SPT-compiles one benchmark through an
// artifact cache, without simulating it. The generated program and the
// compilation are memoized; ctx bounds the profiling runs inside the
// compiler. This is the compile half of RunBenchmarkCached, exposed for
// callers (the sptd service) that serve compilation as its own operation.
func CompileBenchmarkCached(ctx context.Context, name string, scale int, cache *artifact.Cache) (*compiler.Result, error) {
	orig, err := benchProgram(cache, name, scale)
	if err != nil {
		return nil, err
	}
	return compileBench(cache, name, orig, func(p *ir.Program, o compiler.Options) (*compiler.Result, error) {
		return compiler.CompileContext(ctx, p, o)
	})
}

// benchProgram returns the optimized program of a benchmark (the baseline
// code, as in the paper), memoized under (name, scale).
func benchProgram(cache *artifact.Cache, name string, scale int) (*ir.Program, error) {
	return cache.Program(name, scale, "opt", func() (*ir.Program, error) {
		b, ok := bench.ByName(name)
		if !ok {
			return nil, fmt.Errorf("harness: unknown benchmark %q", name)
		}
		return opt.Optimize(b.Build(scale)), nil
	})
}

// compileBench memoizes the SPT compilation of a benchmark program under
// its per-benchmark compiler options.
func compileBench(cache *artifact.Cache, name string, orig *ir.Program, run func(*ir.Program, compiler.Options) (*compiler.Result, error)) (*compiler.Result, error) {
	o := bench.CompilerOptions(name)
	return cache.CompileResult(orig, fmt.Sprintf("%+v", o), func() (*compiler.Result, error) {
		return run(orig, o)
	})
}

func baselineOf(cfg arch.Config) arch.Config {
	cfg.SPT = false
	return cfg
}

func simulateContext(ctx context.Context, p *ir.Program, cfg arch.Config) (*arch.RunStats, error) {
	lp, err := interp.Load(p)
	if err != nil {
		return nil, err
	}
	return arch.NewMachine(lp, cfg).RunContext(ctx)
}

// simulateRecorded is the record-once/replay-many simulation path: the
// program's architectural trace is captured once (memoized in the cache
// under the program fingerprint and step limit) and replayed into a fresh
// engine per configuration. Replayed runs are bit-identical to fused runs
// (arch.RunRecordedContext), so cached and uncached evaluations agree to
// the bit. Without a cache a shared capture cannot outlive the call, so the
// fused interpret-and-simulate path runs instead.
func simulateRecorded(ctx context.Context, cache *artifact.Cache, nc *nativecap.Capturer, p *ir.Program, cfg arch.Config) (*arch.RunStats, error) {
	if cache == nil {
		return simulateContext(ctx, p, cfg)
	}
	lp, err := interp.Load(p)
	if err != nil {
		return nil, err
	}
	rec, err := cache.Recording(p, cfg.StepLimit, func() (*trace.Recording, error) {
		return nc.Capture(ctx, p, lp, cfg.StepLimit)
	})
	if err != nil {
		return nil, err
	}
	return arch.NewMachine(lp, cfg).RunRecordedContext(ctx, rec)
}

// Broadcast telemetry: decode passes shared by batched sweep variants and
// the total engines those passes fed. Exposed process-wide (BroadcastStats)
// so the daemon's metrics endpoint can report them.
var (
	broadcastPasses   atomic.Int64
	broadcastVariants atomic.Int64
)

// BroadcastStats reports how many shared decode passes batched sweeps have
// performed and how many variant engines were fed by them.
func BroadcastStats() (passes, batchedVariants int64) {
	return broadcastPasses.Load(), broadcastVariants.Load()
}

// broadcastSimulate is the vectorized record-once/replay-many path: one
// recording lookup pins the shared capture for the whole batch, and a
// single decode pass (arch.RunRecordedMulti) fans every event out to one
// engine per configuration. All configurations must share the recording's
// step limit — Sweep groups variants by it. Individual engines may fail
// (validation, cycle budget) without aborting their siblings.
func broadcastSimulate(ctx context.Context, cache *artifact.Cache, nc *nativecap.Capturer, p *ir.Program, cfgs []arch.Config) ([]*arch.RunStats, []error) {
	fill := func(err error) []error {
		errs := make([]error, len(cfgs))
		for i := range errs {
			errs[i] = err
		}
		return errs
	}
	lp, err := interp.Load(p)
	if err != nil {
		return make([]*arch.RunStats, len(cfgs)), fill(err)
	}
	rec, err := cache.Recording(p, cfgs[0].StepLimit, func() (*trace.Recording, error) {
		return nc.Capture(ctx, p, lp, cfgs[0].StepLimit)
	})
	if err != nil {
		return make([]*arch.RunStats, len(cfgs)), fill(err)
	}
	broadcastPasses.Add(1)
	broadcastVariants.Add(int64(len(cfgs)))
	return arch.RunRecordedMulti(ctx, lp, rec, cfgs)
}

// GuardOptions configures the guarded evaluation pipeline.
type GuardOptions struct {
	// Budget bounds each stage (wall clock) and each simulation
	// (steps/cycles); Budget.Retries bounds the rerun-at-reduced-scale
	// policy for budget-exceeded benchmarks.
	Budget guard.Budget
	// Perturb, when non-nil, rewrites the machine configuration per
	// benchmark before the run — the hook fault suites use to force
	// degenerate hardware on selected benchmarks.
	Perturb func(name string, cfg arch.Config) arch.Config
	// Artifacts, when non-nil, memoizes generated programs, compilations
	// and simulations across the evaluation — sweeps that revisit the same
	// (program, configuration) point reuse the stored result instead of
	// recomputing it. Results are identical to an uncached run.
	Artifacts *artifact.Cache
	// RecordTraces routes simulations through the record-once/replay-many
	// path: the program's architectural trace is captured into Artifacts
	// and each configuration replays it instead of re-interpreting.
	// Recordings are tens of MB per program, so this pays off only when
	// several configurations share one program — Sweep always turns it on;
	// one-shot evaluations (RunAllGuarded over distinct benchmarks) leave
	// it off and keep the fused interpret-and-simulate path.
	RecordTraces bool
	// Native, when non-nil, routes trace captures through compiled native
	// modules (internal/nativecap) instead of the interpreter. The capturer
	// guarantees silent interpreter fallback on any failure, so enabling it
	// can change capture latency but never results.
	Native *nativecap.Capturer
}

// Report is the outcome of a guarded whole-suite evaluation: the runs that
// completed (indexed like bench.Names(); nil where a benchmark failed) and
// a structured record of every failure.
type Report struct {
	Runs     []*BenchRun
	Failures []*guard.StageError
}

// Successes returns the completed runs, in order, with failures elided.
func (r *Report) Successes() []*BenchRun {
	var out []*BenchRun
	for _, run := range r.Runs {
		if run != nil {
			out = append(out, run)
		}
	}
	return out
}

// RunBenchmarkGuarded evaluates one benchmark with panic isolation,
// per-stage wall-clock deadlines, and step/cycle budgets. Stage failures
// come back as *guard.StageError. A budget-exceeded run is retried at
// halved scale up to Budget.Retries times — degraded results beat no
// results for a sweep — and a retried run records its RetriedScale.
func RunBenchmarkGuarded(ctx context.Context, name string, scale int, cfg arch.Config, opts GuardOptions) (*BenchRun, error) {
	if opts.Perturb != nil {
		cfg = opts.Perturb(name, cfg)
	}
	cfg = opts.Budget.Apply(cfg)
	return runGuardedEffective(ctx, name, scale, cfg, opts)
}

// runGuardedEffective is RunBenchmarkGuarded after config normalization:
// cfg already has the Perturb hook and the budget applied, so retries (and
// batched sweeps, which normalize up front to group variants) never
// re-apply them.
func runGuardedEffective(ctx context.Context, name string, scale int, cfg arch.Config, opts GuardOptions) (*BenchRun, error) {
	run, err := runBenchmarkStages(ctx, name, scale, cfg, opts)
	retried := false
	for r := 0; err != nil && guard.Exceeded(err) && r < opts.Budget.Retries && scale > 1; r++ {
		scale /= 2
		retried = true
		run, err = runBenchmarkStages(ctx, name, scale, cfg, opts)
	}
	if err == nil && retried {
		run.RetriedScale = scale
	}
	return run, err
}

// runBenchmarkStages is one guarded pass over the compile / baseline / SPT
// pipeline. Each stage gets its own deadline derived from the budget, and
// each stage's artifact is served from opts.Artifacts when present.
func runBenchmarkStages(ctx context.Context, name string, scale int, cfg arch.Config, opts GuardOptions) (*BenchRun, error) {
	budget := opts.Budget
	cache := opts.Artifacts
	simulate := func(sctx context.Context, p *ir.Program, c arch.Config) (*arch.RunStats, error) {
		if opts.RecordTraces {
			return simulateRecorded(sctx, cache, opts.Native, p, c)
		}
		return simulateContext(sctx, p, c)
	}
	var (
		orig *ir.Program
		cres *compiler.Result
	)
	err := guard.Run(name, guard.StageCompile, func() error {
		var berr error
		orig, berr = benchProgram(cache, name, scale)
		if berr != nil {
			return berr
		}
		sctx, cancel := budget.Context(ctx)
		defer cancel()
		var cerr error
		cres, cerr = compileBench(cache, name, orig, func(p *ir.Program, o compiler.Options) (*compiler.Result, error) {
			return compiler.CompileContext(sctx, p, o)
		})
		return cerr
	})
	if err != nil {
		return nil, err
	}
	var base *arch.RunStats
	err = guard.Run(name, guard.StageBaseline, func() error {
		sctx, cancel := budget.Context(ctx)
		defer cancel()
		var serr error
		base, serr = cache.Simulate(orig, baselineOf(cfg), func() (*arch.RunStats, error) {
			return simulate(sctx, orig, baselineOf(cfg))
		})
		return serr
	})
	if err != nil {
		return nil, err
	}
	var spt *arch.RunStats
	err = guard.Run(name, guard.StageSimulate, func() error {
		sctx, cancel := budget.Context(ctx)
		defer cancel()
		var serr error
		spt, serr = cache.Simulate(cres.Program, cfg, func() (*arch.RunStats, error) {
			return simulate(sctx, cres.Program, cfg)
		})
		return serr
	})
	if err != nil {
		return nil, err
	}
	return &BenchRun{Name: name, Compile: cres, Baseline: base, SPT: spt}, nil
}

// RunAll evaluates every benchmark. The per-benchmark pipelines are
// completely independent (each gets its own interpreter, caches and
// predictor state), so they run concurrently — results are deterministic
// and identical to a sequential run.
//
// RunAll degrades gracefully: when benchmarks fail, the returned slice
// still carries every completed run (failed positions are nil) alongside
// the first failure. Callers that need the full failure list use
// RunAllGuarded.
func RunAll(scale int, cfg arch.Config) ([]*BenchRun, error) {
	rep := RunAllGuarded(context.Background(), scale, cfg, GuardOptions{})
	if len(rep.Failures) > 0 {
		return rep.Runs, rep.Failures[0]
	}
	return rep.Runs, nil
}

// RunAllGuarded evaluates every benchmark concurrently under the guarded
// pipeline. One benchmark's failure — including a panic in its compile or
// simulate stage — never takes down the suite: it becomes a structured
// entry in Report.Failures while the other benchmarks complete normally.
func RunAllGuarded(ctx context.Context, scale int, cfg arch.Config, opts GuardOptions) *Report {
	names := bench.Names()
	rep := &Report{Runs: make([]*BenchRun, len(names))}
	errs := make([]error, len(names))
	var wg sync.WaitGroup
	for i, name := range names {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			release := acquireWork()
			defer release()
			rep.Runs[i], errs[i] = RunBenchmarkGuarded(ctx, name, scale, cfg, opts)
		}(i, name)
	}
	wg.Wait()
	for i, err := range errs {
		if err == nil {
			continue
		}
		var se *guard.StageError
		if !errors.As(err, &se) {
			se = &guard.StageError{Benchmark: names[i], Stage: "run", Err: err}
		}
		rep.Failures = append(rep.Failures, se)
	}
	return rep
}

// ---- Figure 6: accumulative loop coverage vs. loop body size ----

// CoveragePoint is one point of a Figure 6 curve.
type CoveragePoint struct {
	BodySize float64 // average dynamic body size (instructions)
	Coverage float64 // accumulative fraction of program cycles
}

// Fig6SizeLimits is the x-axis of Figure 6 (log-scale body-size limits).
var Fig6SizeLimits = []float64{1, 3, 10, 30, 100, 300, 1000, 3000, 10000, 100000, 1000000}

// LoopCoverage profiles one benchmark and returns its accumulative
// coverage curve: for each size limit, the fraction of total cycles spent
// in loops whose average body size is within the limit. Cycles are counted
// once, at the outermost qualifying loop, so nests do not double count.
func LoopCoverage(name string, scale int) ([]CoveragePoint, error) {
	return LoopCoverageCached(name, scale, nil)
}

// LoopCoverageCached is LoopCoverage through an artifact cache: the raw
// (unoptimized) program and its profile are memoized, so repeated coverage
// queries — and anything else profiling the same program — share the work.
func LoopCoverageCached(name string, scale int, cache *artifact.Cache) ([]CoveragePoint, error) {
	// Figure 6 profiles the raw build: coverage is a property of the
	// program as written, before the optimizer reshapes its loops.
	p, err := cache.Program(name, scale, "raw", func() (*ir.Program, error) {
		b, ok := bench.ByName(name)
		if !ok {
			return nil, fmt.Errorf("harness: unknown benchmark %q", name)
		}
		return b.Build(scale), nil
	})
	if err != nil {
		return nil, err
	}
	prof, err := cache.Profile(p, "steps=0", func() (*profiler.Profile, error) {
		lp, err := interp.Load(p)
		if err != nil {
			return nil, err
		}
		return profiler.Collect(lp, 0)
	})
	if err != nil {
		return nil, err
	}
	return coverageCurve(prof, Fig6SizeLimits), nil
}

func coverageCurve(prof *profiler.Profile, limits []float64) []CoveragePoint {
	var pts []CoveragePoint
	for _, lim := range limits {
		pts = append(pts, CoveragePoint{BodySize: lim, Coverage: coverageAt(prof, lim)})
	}
	return pts
}

// coverageAt returns the fraction of total cycles inside loops with body
// size <= lim, counting each loop's inclusive cycles only when no enclosing
// loop also qualifies.
func coverageAt(prof *profiler.Profile, lim float64) float64 {
	if prof.TotalCycles == 0 {
		return 0
	}
	qualifies := func(lp *profiler.LoopProfile) bool {
		return lp != nil && lp.Iterations > 0 && lp.BodySize() <= lim
	}
	var covered int64
	for _, lp := range prof.Loops {
		if !qualifies(lp) {
			continue
		}
		// Skip if any qualifying ancestor exists (the ancestor counts it).
		anc := lp.Parent
		skip := false
		for anc != nil {
			pl := prof.Loops[*anc]
			if qualifies(pl) {
				skip = true
				break
			}
			if pl == nil {
				break
			}
			anc = pl.Parent
		}
		if !skip {
			covered += lp.InclCycles
		}
	}
	frac := float64(covered) / float64(prof.TotalCycles)
	if frac > 1 {
		frac = 1
	}
	return frac
}

// ---- Figure 7: SPT loop number and coverage ----

// Fig7Row is one benchmark's bar in Figure 7.
type Fig7Row struct {
	Name        string
	SizeCap     float64 // 1000, or 2500 for gap
	MaxCoverage float64 // coverage of all loops within the cap
	SPTCoverage float64 // coverage of the selected SPT loops
	NumSPTLoops int
}

// Fig7 computes the SPT loop selection summary for one benchmark from a
// finished run.
func Fig7(run *BenchRun) Fig7Row {
	cap := bench.CompilerOptions(run.Name).MaxBodySize
	row := Fig7Row{Name: run.Name, SizeCap: cap}
	row.MaxCoverage = coverageAt(run.Compile.Profile, cap)
	for _, l := range run.Compile.SelectedLoops() {
		row.NumSPTLoops++
		row.SPTCoverage += l.Coverage
	}
	if row.SPTCoverage > row.MaxCoverage {
		row.SPTCoverage = row.MaxCoverage // nested-attribution guard
	}
	return row
}

// ---- Figure 8: SPT loop performance ----

// Fig8Row is one benchmark's loop-level results.
type Fig8Row struct {
	Name            string
	LoopSpeedup     float64 // cycle-weighted average over selected loops
	FastCommitRatio float64
	MisspecRatio    float64
	LoopsMeasured   int
}

// Fig8 computes loop-level speedup and speculation quality for a run.
func Fig8(run *BenchRun) Fig8Row {
	row := Fig8Row{Name: run.Name}
	var baseCycles, sptCycles int64
	var windows, fast, spec, misspec int64
	for _, l := range run.Compile.SelectedLoops() {
		key := profiler.LoopKey{Func: l.Key.Func, Header: arch.NormalizeHeader(l.Key.Header)}
		bl := run.Baseline.PerLoop[key]
		sl := run.SPT.PerLoop[key]
		if bl == nil || sl == nil || bl.Cycles == 0 || sl.Cycles == 0 {
			continue
		}
		row.LoopsMeasured++
		baseCycles += bl.Cycles
		sptCycles += sl.Cycles
		windows += sl.Windows
		fast += sl.FastCommits
		spec += sl.SpecInstrs
		misspec += sl.MisspecInstrs
	}
	if sptCycles > 0 {
		row.LoopSpeedup = float64(baseCycles) / float64(sptCycles)
	} else {
		row.LoopSpeedup = 1
	}
	if windows > 0 {
		row.FastCommitRatio = float64(fast) / float64(windows)
	}
	if spec > 0 {
		row.MisspecRatio = float64(misspec) / float64(spec)
	}
	return row
}

// ---- Figure 9: program speedup with breakdown ----

// Fig9Row is one benchmark's overall result.
type Fig9Row struct {
	Name    string
	Speedup float64
	// The speedup percentage decomposed by where the cycles went away
	// (execution / pipeline stalls / d-cache stalls), as in the stacked
	// bars of Figure 9. Parts sum to Speedup-1.
	ExecPart, PipePart, DcachePart float64
}

// Fig9 computes the program-level summary of a run.
func Fig9(run *BenchRun) Fig9Row {
	row := Fig9Row{Name: run.Name, Speedup: run.Speedup()}
	gain := row.Speedup - 1
	if gain <= 0 {
		return row
	}
	db := run.Baseline.Breakdown
	ds := run.SPT.Breakdown
	dExec := float64(db.Exec - ds.Exec)
	dPipe := float64(db.PipeStall - ds.PipeStall)
	dDc := float64(db.DcacheStall - ds.DcacheStall)
	for _, d := range []*float64{&dExec, &dPipe, &dDc} {
		if *d < 0 {
			*d = 0
		}
	}
	tot := dExec + dPipe + dDc
	if tot <= 0 {
		row.ExecPart = gain
		return row
	}
	row.ExecPart = gain * dExec / tot
	row.PipePart = gain * dPipe / tot
	row.DcachePart = gain * dDc / tot
	return row
}

// Average returns the arithmetic-mean Fig9 row across benchmarks (the
// paper's "Average" bar).
func Average(rows []Fig9Row) Fig9Row {
	out := Fig9Row{Name: "Average"}
	if len(rows) == 0 {
		return out
	}
	for _, r := range rows {
		out.Speedup += r.Speedup
		out.ExecPart += r.ExecPart
		out.PipePart += r.PipePart
		out.DcachePart += r.DcachePart
	}
	n := float64(len(rows))
	out.Speedup /= n
	out.ExecPart /= n
	out.PipePart /= n
	out.DcachePart /= n
	return out
}

// ---- Figure 1: the parser list-free loop ----

// Fig1Stats reports the headline statistics of the parser free-list loop.
type Fig1Stats struct {
	LoopSpeedup     float64
	FastCommitRatio float64
	MisspecRatio    float64
	Windows         int64
}

// Fig1Parser measures the Figure 1 loop on the default machine.
func Fig1Parser(scale int) (Fig1Stats, error) {
	return Fig1ParserCached(scale, nil)
}

// Fig1ParserCached is Fig1Parser through an artifact cache; the underlying
// parser run is shared with any suite evaluation at the same scale and
// configuration.
func Fig1ParserCached(scale int, cache *artifact.Cache) (Fig1Stats, error) {
	run, err := RunBenchmarkCached("parser", scale, arch.DefaultConfig(), cache)
	if err != nil {
		return Fig1Stats{}, err
	}
	key := profiler.LoopKey{Func: "freelist", Header: "head"}
	bl := run.Baseline.PerLoop[key]
	sl := run.SPT.PerLoop[key]
	if bl == nil || sl == nil {
		return Fig1Stats{}, fmt.Errorf("harness: parser free loop not measured")
	}
	st := Fig1Stats{Windows: sl.Windows}
	if sl.Cycles > 0 {
		st.LoopSpeedup = float64(bl.Cycles) / float64(sl.Cycles)
	}
	st.FastCommitRatio = sl.FastCommitRatio()
	st.MisspecRatio = sl.MisspecRatio()
	return st, nil
}

// ---- Table 1 ----

// Table1 renders the default machine configuration as (parameter, value)
// rows, mirroring the paper's Table 1.
func Table1(cfg arch.Config) [][2]string {
	c := cfg.Cache
	return [][2]string{
		{"Processor cores", "2 in-order cores (main + speculative)"},
		{"L1 caches", fmt.Sprintf("separate I/D, %dKB, %d-way, %dB-block, %d-cycle latency",
			c.L1I.SizeBytes>>10, c.L1I.Ways, c.L1I.BlockBytes, c.L1I.Latency)},
		{"L2 cache", fmt.Sprintf("%dKB, %d-way, %dB-block, %d-cycle latency",
			c.L2.SizeBytes>>10, c.L2.Ways, c.L2.BlockBytes, c.L2.Latency)},
		{"L3 cache", fmt.Sprintf("%dMB, %d-way, %dB-block, %d-cycle latency",
			c.L3.SizeBytes>>20, c.L3.Ways, c.L3.BlockBytes, c.L3.Latency)},
		{"Memory latency", fmt.Sprintf("%d cycles", c.MemLatency)},
		{"Normal / re-execution fetch width", fmt.Sprintf("%d", cfg.FetchWidth)},
		{"Normal / re-execution issue width", fmt.Sprintf("%d", cfg.IssueWidth)},
		{"Replay fetch width", fmt.Sprintf("%d", cfg.ReplayFetchWidth)},
		{"Replay issue width", fmt.Sprintf("%d", cfg.ReplayIssueWidth)},
		{"Branch predictor", fmt.Sprintf("GAg with %d entries", cfg.BPredEntries)},
		{"Mispredicted branch penalty", fmt.Sprintf("%d cycles", cfg.BranchPenalty)},
		{"RF copy overhead", fmt.Sprintf("%d cycle minimum", cfg.RFCopyCycles)},
		{"Fast commit overhead", fmt.Sprintf("%d cycles minimum", cfg.FastCommitCycles)},
		{"Speculation result buffer size", fmt.Sprintf("%d entries", cfg.SRBSize)},
		{"Misspeculation recovery", recoveryName(cfg.Recovery)},
		{"Register dependence checking", regCheckName(cfg.RegCheck)},
	}
}

func recoveryName(r arch.RecoveryKind) string {
	if r == arch.RecoverySquash {
		return "full squash"
	}
	return "selective re-execution with fast-commit (SRX+FC)"
}

func regCheckName(r arch.RegCheckKind) string {
	if r == arch.RegCheckUpdate {
		return "update-based"
	}
	return "value-based"
}

// ---- Ablations / configuration sweeps ----

// AblationRow compares configurations on one benchmark. A variant that
// failed still gets a row: Err records why and Speedup is zero — consumers
// that only want numbers skip rows with Err set.
type AblationRow struct {
	Name    string
	Variant string
	Speedup float64
	Err     error
}

// Variant is one configuration point of a sweep.
type Variant struct {
	Label  string
	Config arch.Config
}

// Sweep evaluates every variant of one benchmark under the guarded
// pipeline. Variants sharing a (program, step-limit) recording are grouped
// into one broadcast batch: the batch holds a single work-slot, performs
// one recording lookup for all members, and a single decode pass fans every
// trace event out to one engine per variant (arch.RunRecordedMulti).
// Variants with a step limit nobody else shares fall back to the
// per-variant guarded path, one work-slot each. Rows come back in variant
// order, and with opts.Artifacts set the numbers are identical to a
// sequential uncached run (the shared compile, baseline and
// repeated-configuration simulations are memoized, not approximated; the
// broadcast replay is bit-identical to per-variant replay — see
// TestSweepDeterminism and arch's TestReplayDeterminismAcrossVariants).
//
// Sweep degrades gracefully: a failed variant does not abort its batch
// siblings; its row carries the error (AblationRow.Err) with Speedup zero,
// and the joined per-variant errors are returned alongside the rows.
func Sweep(ctx context.Context, name string, scale int, variants []Variant, opts GuardOptions) ([]AblationRow, error) {
	// A sweep's variants share one program, so the trace capture is repaid
	// N-fold; one-shot callers keep the default fused path (see
	// GuardOptions.RecordTraces).
	opts.RecordTraces = true
	if opts.Artifacts == nil && len(variants) > 1 {
		// Even a caller that asked for no cross-call memoization profits
		// from sharing within the sweep: the benchmark is generated,
		// compiled and interpreted once, and every variant replays the
		// captured trace into its own engine (results stay bit-identical —
		// see TestSweepDeterminism). The cache is private to this call, so
		// its recordings can be released once the last variant joins.
		priv := artifact.NewBounded(0)
		opts.Artifacts = priv
		defer priv.ReleaseRecordings()
	}
	// Normalize every variant's configuration up front (Perturb hook, then
	// budget) — exactly what RunBenchmarkGuarded would do — so variants can
	// be grouped by the step limit that keys their shared recording.
	effective := make([]arch.Config, len(variants))
	for i, v := range variants {
		c := v.Config
		if opts.Perturb != nil {
			c = opts.Perturb(name, c)
		}
		effective[i] = opts.Budget.Apply(c)
	}
	groups := map[int64][]int{}
	var limits []int64 // deterministic batch launch order
	for i := range variants {
		sl := effective[i].StepLimit
		if _, ok := groups[sl]; !ok {
			limits = append(limits, sl)
		}
		groups[sl] = append(groups[sl], i)
	}
	runs := make([]*BenchRun, len(variants))
	errs := make([]error, len(variants))
	var wg sync.WaitGroup
	for _, sl := range limits {
		idxs := groups[sl]
		if len(idxs) == 1 {
			// Heterogeneous step limit: nothing to broadcast with, so keep
			// the per-variant path.
			i := idxs[0]
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				release := acquireWork()
				defer release()
				runs[i], errs[i] = runGuardedEffective(ctx, name, scale, effective[i], opts)
			}(i)
			continue
		}
		wg.Add(1)
		go func(idxs []int) {
			defer wg.Done()
			// The whole batch is one leaf evaluation: one slot, however
			// many engines ride the shared decode pass.
			release := acquireWork()
			defer release()
			sweepBatch(ctx, name, scale, idxs, effective, opts, runs, errs)
		}(idxs)
	}
	wg.Wait()
	rows := make([]AblationRow, len(variants))
	for i, run := range runs {
		rows[i] = AblationRow{Name: name, Variant: variants[i].Label, Err: errs[i]}
		if errs[i] == nil {
			rows[i].Speedup = run.Speedup()
		}
	}
	return rows, errors.Join(errs...)
}

// sweepBatch evaluates one group of variants that share a recording. The
// compile stage runs once; the baseline and SPT stages each make one
// batched cache transaction (artifact.Cache.SimulateBatch), whose misses
// are computed by a single broadcast replay. Failures stay per-variant: a
// variant whose engine trips its cycle budget gets its error recorded while
// its siblings finish bit-identical to a solo run, and budget-exceeded
// variants retry individually at halved scale.
func sweepBatch(ctx context.Context, name string, scale int, idxs []int, effective []arch.Config, opts GuardOptions, runs []*BenchRun, errs []error) {
	budget := opts.Budget
	cache := opts.Artifacts
	fail := func(err error) {
		for _, i := range idxs {
			errs[i] = err
		}
	}

	var (
		orig *ir.Program
		cres *compiler.Result
	)
	err := guard.Run(name, guard.StageCompile, func() error {
		var berr error
		orig, berr = benchProgram(cache, name, scale)
		if berr != nil {
			return berr
		}
		sctx, cancel := budget.Context(ctx)
		defer cancel()
		var cerr error
		cres, cerr = compileBench(cache, name, orig, func(p *ir.Program, o compiler.Options) (*compiler.Result, error) {
			return compiler.CompileContext(sctx, p, o)
		})
		return cerr
	})
	if err != nil {
		fail(err)
		return
	}

	// Baseline stage: the members' baselines canonicalize to very few
	// distinct configurations (usually one); SimulateBatch coalesces the
	// duplicates and one broadcast pass computes whatever is missing.
	baseCfgs := make([]arch.Config, len(idxs))
	for j, i := range idxs {
		baseCfgs[j] = baselineOf(effective[i])
	}
	var baseStats []*arch.RunStats
	var baseErrs []error
	err = guard.Run(name, guard.StageBaseline, func() error {
		baseStats, baseErrs = cache.SimulateBatch(orig, baseCfgs, func(miss []int) ([]*arch.RunStats, []error) {
			sctx, cancel := budget.Context(ctx)
			defer cancel()
			mcfgs := make([]arch.Config, len(miss))
			for j, m := range miss {
				mcfgs[j] = baseCfgs[m]
			}
			return broadcastSimulate(sctx, cache, opts.Native, orig, mcfgs)
		})
		return nil
	})
	if err != nil {
		fail(err)
		return
	}

	// SPT stage: every variant engine rides one decode pass of the shared
	// recording.
	sptCfgs := make([]arch.Config, len(idxs))
	for j, i := range idxs {
		sptCfgs[j] = effective[i]
	}
	var sptStats []*arch.RunStats
	var sptErrs []error
	err = guard.Run(name, guard.StageSimulate, func() error {
		sptStats, sptErrs = cache.SimulateBatch(cres.Program, sptCfgs, func(miss []int) ([]*arch.RunStats, []error) {
			sctx, cancel := budget.Context(ctx)
			defer cancel()
			mcfgs := make([]arch.Config, len(miss))
			for j, m := range miss {
				mcfgs[j] = sptCfgs[m]
			}
			return broadcastSimulate(sctx, cache, opts.Native, cres.Program, mcfgs)
		})
		return nil
	})
	if err != nil {
		fail(err)
		return
	}

	stageErr := func(stage string, err error) error {
		var se *guard.StageError
		if errors.As(err, &se) && se.Benchmark == name {
			return err
		}
		return &guard.StageError{Benchmark: name, Stage: stage, Err: err}
	}
	for j, i := range idxs {
		switch {
		case baseErrs[j] != nil:
			errs[i] = stageErr(guard.StageBaseline, baseErrs[j])
		case sptErrs[j] != nil:
			errs[i] = stageErr(guard.StageSimulate, sptErrs[j])
		default:
			runs[i] = &BenchRun{Name: name, Compile: cres, Baseline: baseStats[j], SPT: sptStats[j]}
			continue
		}
		// A budget-exceeded member degrades alone: retry it through the
		// per-variant pipeline at halved scale, like RunBenchmarkGuarded.
		sc, retried := scale, false
		for r := 0; errs[i] != nil && guard.Exceeded(errs[i]) && r < budget.Retries && sc > 1; r++ {
			sc /= 2
			retried = true
			runs[i], errs[i] = runBenchmarkStages(ctx, name, sc, effective[i], opts)
		}
		if errs[i] == nil && retried {
			runs[i].RetriedScale = sc
		}
	}
}

// RecoveryVariants compares SRX+FC against full squash.
func RecoveryVariants() []Variant {
	var vs []Variant
	for _, rec := range []arch.RecoveryKind{arch.RecoverySRXFC, arch.RecoverySquash} {
		cfg := arch.DefaultConfig()
		cfg.Recovery = rec
		vs = append(vs, Variant{Label: recoveryName(rec), Config: cfg})
	}
	return vs
}

// RegCheckVariants compares value-based against update-based checking.
func RegCheckVariants() []Variant {
	var vs []Variant
	for _, rc := range []arch.RegCheckKind{arch.RegCheckValue, arch.RegCheckUpdate} {
		cfg := arch.DefaultConfig()
		cfg.RegCheck = rc
		vs = append(vs, Variant{Label: regCheckName(rc), Config: cfg})
	}
	return vs
}

// OverheadVariants sweeps the fork (RF copy) and fast-commit overheads —
// the paper's Section 6 calls understanding "the implications of various
// architectural parameters" out as future work; this is the first of those
// sweeps.
func OverheadVariants(cycles []int) []Variant {
	var vs []Variant
	for _, n := range cycles {
		cfg := arch.DefaultConfig()
		cfg.RFCopyCycles = n
		cfg.FastCommitCycles = n * 5
		vs = append(vs, Variant{
			Label:  fmt.Sprintf("RFcopy=%d fastcommit=%d", n, n*5),
			Config: cfg,
		})
	}
	return vs
}

// SRBVariants sweeps the speculation-result-buffer size.
func SRBVariants(sizes []int) []Variant {
	var vs []Variant
	for _, n := range sizes {
		cfg := arch.DefaultConfig()
		cfg.SRBSize = n
		vs = append(vs, Variant{Label: fmt.Sprintf("SRB=%d", n), Config: cfg})
	}
	return vs
}

// CoresVariants sweeps the CMP core count: 2 is the paper's classic
// machine, larger counts enable chained speculation where a committing
// window spawns its successor on the next free core.
func CoresVariants(cores []int) []Variant {
	var vs []Variant
	for _, n := range cores {
		cfg := arch.DefaultConfig()
		cfg.Cores = n
		vs = append(vs, Variant{Label: fmt.Sprintf("cores=%d", n), Config: cfg})
	}
	return vs
}

// SchedVariants compares the spec-thread scheduling policies at a fixed
// core count: in-order next-iteration spawning, stride-K lookahead for each
// requested stride, and eager restart on violation.
func SchedVariants(cores int, strides []int) []Variant {
	if cores == 0 {
		cores = 4
	}
	mk := func(label string, mut func(*arch.Config)) Variant {
		cfg := arch.DefaultConfig()
		cfg.Cores = cores
		mut(&cfg)
		return Variant{Label: label, Config: cfg}
	}
	vs := []Variant{
		mk(fmt.Sprintf("cores=%d %s", cores, multispec.SchedInOrder), func(*arch.Config) {}),
	}
	for _, k := range strides {
		k := k
		vs = append(vs, mk(fmt.Sprintf("cores=%d stride=%d", cores, k), func(c *arch.Config) {
			c.Sched = multispec.SchedStride
			c.SchedStride = k
		}))
	}
	vs = append(vs, mk(fmt.Sprintf("cores=%d %s", cores, multispec.SchedEager), func(c *arch.Config) {
		c.Sched = multispec.SchedEager
	}))
	return vs
}

// LiveInVariants compares fork-time register snapshots (SVP) against
// DDG backward-slice pre-computation at spawn.
func LiveInVariants(cores int) []Variant {
	if cores == 0 {
		cores = 4
	}
	var vs []Variant
	for _, m := range []multispec.LiveInMode{multispec.LiveInSVP, multispec.LiveInSlice} {
		cfg := arch.DefaultConfig()
		cfg.Cores = cores
		cfg.LiveIn = m
		vs = append(vs, Variant{Label: fmt.Sprintf("cores=%d livein=%s", cores, m), Config: cfg})
	}
	return vs
}

// SpecOutcomes returns the process-wide per-outcome speculation counters
// (commits by kind, squashes by cause) accumulated by every engine since
// start-up, in a stable order for rendering.
func SpecOutcomes() multispec.CounterSnapshot {
	return multispec.Global.Snapshot()
}

// AblateRecovery compares SRX+FC against full squash.
func AblateRecovery(name string, scale int) ([]AblationRow, error) {
	return Sweep(context.Background(), name, scale, RecoveryVariants(), GuardOptions{})
}

// AblateRegCheck compares value-based against update-based checking.
func AblateRegCheck(name string, scale int) ([]AblationRow, error) {
	return Sweep(context.Background(), name, scale, RegCheckVariants(), GuardOptions{})
}

// AblateOverheads sweeps the fork and fast-commit overheads.
func AblateOverheads(name string, scale int, cycles []int) ([]AblationRow, error) {
	return Sweep(context.Background(), name, scale, OverheadVariants(cycles), GuardOptions{})
}

// AblateSRB sweeps the speculation-result-buffer size.
func AblateSRB(name string, scale int, sizes []int) ([]AblationRow, error) {
	return Sweep(context.Background(), name, scale, SRBVariants(sizes), GuardOptions{})
}

// AblateCores sweeps the CMP core count.
func AblateCores(name string, scale int, cores []int) ([]AblationRow, error) {
	return Sweep(context.Background(), name, scale, CoresVariants(cores), GuardOptions{})
}

// AblateSched compares scheduling policies at the given core count.
func AblateSched(name string, scale int, cores int, strides []int) ([]AblationRow, error) {
	return Sweep(context.Background(), name, scale, SchedVariants(cores, strides), GuardOptions{})
}
