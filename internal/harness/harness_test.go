package harness

import (
	"strings"
	"testing"

	"repro/internal/arch"
)

func runBench(t *testing.T, name string, scale int) *BenchRun {
	t.Helper()
	r, err := RunBenchmark(name, scale, arch.DefaultConfig())
	if err != nil {
		t.Fatalf("RunBenchmark(%s): %v", name, err)
	}
	return r
}

func TestTable1MatchesPaper(t *testing.T) {
	rows := Table1(arch.DefaultConfig())
	want := map[string]string{
		"L1 caches":                      "separate I/D, 16KB, 4-way, 64B-block, 1-cycle latency",
		"L2 cache":                       "256KB, 8-way, 64B-block, 5-cycle latency",
		"L3 cache":                       "3MB, 12-way, 128B-block, 12-cycle latency",
		"Memory latency":                 "150 cycles",
		"Replay fetch width":             "12",
		"Replay issue width":             "12",
		"Branch predictor":               "GAg with 1024 entries",
		"Mispredicted branch penalty":    "5 cycles",
		"RF copy overhead":               "1 cycle minimum",
		"Fast commit overhead":           "5 cycles minimum",
		"Speculation result buffer size": "1024 entries",
		"Register dependence checking":   "value-based",
	}
	got := map[string]string{}
	for _, r := range rows {
		got[r[0]] = r[1]
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("Table1[%s] = %q, want %q", k, got[k], v)
		}
	}
	if !strings.Contains(got["Misspeculation recovery"], "SRX+FC") {
		t.Errorf("recovery = %q", got["Misspeculation recovery"])
	}
}

func TestFig6CoverageShapes(t *testing.T) {
	// Parser: substantial loop coverage, monotone accumulation, below 100%.
	pts, err := LoopCoverage("parser", 1)
	if err != nil {
		t.Fatal(err)
	}
	last := 0.0
	for _, p := range pts {
		if p.Coverage < last-1e-9 {
			t.Errorf("coverage not monotone at size %v: %v < %v", p.BodySize, p.Coverage, last)
		}
		last = p.Coverage
	}
	if last < 0.5 || last > 0.99 {
		t.Errorf("parser total loop coverage = %v, want 0.5..0.99", last)
	}
	// Vortex: almost no loop coverage (the paper's standout).
	vpts, err := LoopCoverage("vortex", 1)
	if err != nil {
		t.Fatal(err)
	}
	if v := vpts[len(vpts)-1].Coverage; v > 0.3 {
		t.Errorf("vortex loop coverage = %v, want < 0.3", v)
	}
	// Gap: visible jump once the huge-body loop qualifies (Figure 6's
	// signature), i.e. coverage at 3000 much larger than at 1000.
	gpts, err := LoopCoverage("gap", 1)
	if err != nil {
		t.Fatal(err)
	}
	var at1000, at3000 float64
	for _, p := range gpts {
		if p.BodySize == 1000 {
			at1000 = p.Coverage
		}
		if p.BodySize == 3000 {
			at3000 = p.Coverage
		}
	}
	if at3000-at1000 < 0.3 {
		t.Errorf("gap coverage jump = %v -> %v, want a >0.3 jump at the huge loop", at1000, at3000)
	}
}

func TestFig7Shapes(t *testing.T) {
	pr := runBench(t, "parser", 1)
	row := Fig7(pr)
	if row.NumSPTLoops < 3 {
		t.Errorf("parser SPT loops = %d, want >= 3", row.NumSPTLoops)
	}
	if row.SPTCoverage <= 0.2 || row.SPTCoverage > row.MaxCoverage+1e-9 {
		t.Errorf("parser SPT coverage = %v (max %v)", row.SPTCoverage, row.MaxCoverage)
	}
	vo := runBench(t, "vortex", 1)
	vrow := Fig7(vo)
	if vrow.NumSPTLoops != 0 || vrow.SPTCoverage != 0 {
		t.Errorf("vortex Fig7 = %+v, want no SPT loops", vrow)
	}
	if bench := Fig7(runBench(t, "gap", 1)); bench.SizeCap != 2500 {
		t.Errorf("gap size cap = %v, want 2500", bench.SizeCap)
	}
}

func TestFig8Shapes(t *testing.T) {
	pr := runBench(t, "parser", 1)
	row := Fig8(pr)
	if row.LoopsMeasured == 0 {
		t.Fatal("no loops measured")
	}
	if row.LoopSpeedup < 1.2 || row.LoopSpeedup > 2.05 {
		t.Errorf("parser loop speedup = %v, want 1.2..2.05", row.LoopSpeedup)
	}
	if row.FastCommitRatio < 0.3 || row.FastCommitRatio > 0.99 {
		t.Errorf("parser fast-commit ratio = %v", row.FastCommitRatio)
	}
	if row.MisspecRatio <= 0 || row.MisspecRatio > 0.15 {
		t.Errorf("parser misspec ratio = %v, want small but nonzero", row.MisspecRatio)
	}
}

func TestFig9Shapes(t *testing.T) {
	pr := runBench(t, "parser", 1)
	row := Fig9(pr)
	if row.Speedup < 1.1 || row.Speedup > 1.6 {
		t.Errorf("parser program speedup = %v", row.Speedup)
	}
	sum := row.ExecPart + row.PipePart + row.DcachePart
	if diff := sum - (row.Speedup - 1); diff > 1e-9 || diff < -1e-9 {
		t.Errorf("breakdown parts sum %v != gain %v", sum, row.Speedup-1)
	}
	vo := Fig9(runBench(t, "vortex", 1))
	if vo.Speedup < 0.97 || vo.Speedup > 1.03 {
		t.Errorf("vortex speedup = %v, want ~1.0", vo.Speedup)
	}
}

func TestAverage(t *testing.T) {
	rows := []Fig9Row{
		{Speedup: 1.2, ExecPart: 0.1, PipePart: 0.05, DcachePart: 0.05},
		{Speedup: 1.0},
	}
	avg := Average(rows)
	if avg.Speedup != 1.1 || avg.ExecPart != 0.05 {
		t.Errorf("Average = %+v", avg)
	}
	if empty := Average(nil); empty.Speedup != 0 {
		t.Errorf("Average(nil) = %+v", empty)
	}
}

func TestFig1ParserHeadline(t *testing.T) {
	st, err := Fig1Parser(1)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: the loop speeds up by more than 40%, only ~20% of windows are
	// perfectly parallel, and ~5% of speculative instructions are invalid.
	// Our shape: >25% loop speedup, minority fast-commit, small misspec.
	if st.LoopSpeedup < 1.25 {
		t.Errorf("Fig1 loop speedup = %v, want > 1.25", st.LoopSpeedup)
	}
	if st.FastCommitRatio < 0.05 || st.FastCommitRatio > 0.6 {
		t.Errorf("Fig1 fast-commit ratio = %v, want a minority of windows", st.FastCommitRatio)
	}
	if st.MisspecRatio < 0.005 || st.MisspecRatio > 0.2 {
		t.Errorf("Fig1 misspec ratio = %v, want small but real", st.MisspecRatio)
	}
	if st.Windows == 0 {
		t.Error("no windows measured")
	}
}

func TestAblateRecovery(t *testing.T) {
	rows, err := AblateRecovery("parser", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	srx, squash := rows[0].Speedup, rows[1].Speedup
	if srx < squash-1e-9 {
		t.Errorf("SRX+FC (%v) worse than squash (%v)", srx, squash)
	}
}

func TestAblateRegCheck(t *testing.T) {
	rows, err := AblateRegCheck("mcf", 1)
	if err != nil {
		t.Fatal(err)
	}
	val, upd := rows[0].Speedup, rows[1].Speedup
	if val < upd-1e-9 {
		t.Errorf("value-based (%v) worse than update-based (%v)", val, upd)
	}
}

func TestAblateSRB(t *testing.T) {
	rows, err := AblateSRB("parser", 1, []int{16, 1024})
	if err != nil {
		t.Fatal(err)
	}
	if rows[1].Speedup < rows[0].Speedup-1e-9 {
		t.Errorf("SRB 1024 (%v) worse than SRB 16 (%v)", rows[1].Speedup, rows[0].Speedup)
	}
}

func TestAblateCores(t *testing.T) {
	rows, err := AblateCores("parser", 1, []int{2, 4, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// More cores must never lose to the classic 2-core machine: chained
	// spawning only adds overlap, the commit order is unchanged.
	for i := 1; i < len(rows); i++ {
		if rows[i].Speedup < rows[0].Speedup-1e-9 {
			t.Errorf("%s (%v) worse than %s (%v)", rows[i].Variant, rows[i].Speedup,
				rows[0].Variant, rows[0].Speedup)
		}
	}
}

func TestAblateSched(t *testing.T) {
	rows, err := AblateSched("parser", 1, 4, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 { // inorder + stride=2 + eager
		t.Fatalf("rows = %+v", rows)
	}
	for _, r := range rows {
		if r.Err != nil || r.Speedup <= 0 {
			t.Errorf("row %+v; want a positive speedup", r)
		}
	}
}

func TestRunAllSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("full evaluation")
	}
	runs, err := RunAll(1, arch.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 10 {
		t.Fatalf("runs = %d", len(runs))
	}
	var rows []Fig9Row
	for _, r := range runs {
		rows = append(rows, Fig9(r))
	}
	avg := Average(rows)
	// The paper's headline: ~15.6% average speedup on two cores. Our
	// synthetic substrate lands in the same band.
	if avg.Speedup < 1.08 || avg.Speedup > 1.35 {
		t.Errorf("average speedup = %v, want the paper's band (1.08..1.35)", avg.Speedup)
	}
	// Execution-cycle reduction dominates, d-cache second, pipeline stalls
	// smallest — Figure 9's stacking.
	if !(avg.ExecPart > avg.DcachePart && avg.DcachePart > avg.PipePart) {
		t.Errorf("breakdown ordering wrong: %+v", avg)
	}
}

func TestRunBenchmarkErrors(t *testing.T) {
	if _, err := RunBenchmark("perlbmk", 1, arch.DefaultConfig()); err == nil {
		t.Error("excluded benchmark accepted")
	}
	if _, err := LoopCoverage("nosuch", 1); err == nil {
		t.Error("unknown benchmark accepted by LoopCoverage")
	}
}

func TestScaleStability(t *testing.T) {
	if testing.Short() {
		t.Skip("scale-2 evaluation")
	}
	// The headline shapes must hold at a larger workload scale: vortex flat,
	// parser and mcf clearly positive.
	for _, tc := range []struct {
		name     string
		min, max float64
	}{
		{"vortex", 0.97, 1.03},
		{"parser", 1.08, 1.45},
		{"mcf", 1.10, 1.55},
	} {
		run, err := RunBenchmark(tc.name, 2, arch.DefaultConfig())
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if sp := run.Speedup(); sp < tc.min || sp > tc.max {
			t.Errorf("%s at scale 2: speedup %.3f outside [%.2f, %.2f]", tc.name, sp, tc.min, tc.max)
		}
	}
}

func TestAblateOverheads(t *testing.T) {
	rows, err := AblateOverheads("parser", 1, []int{1, 16})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Heavier fork/commit overheads must not help.
	if rows[1].Speedup > rows[0].Speedup+1e-9 {
		t.Errorf("16x overheads (%v) beat 1x (%v)", rows[1].Speedup, rows[0].Speedup)
	}
}
