// Package opt is the classic scalar optimizer applied to every program
// before measurement — the stand-in for the paper's ORC -O3 baseline
// ("ordinary optimized Itanium code", Section 5.1). Both the baseline run
// and the SPT compiler's input go through the same passes, so speedups are
// measured against optimized code, as in the paper.
//
// Passes (iterated to a fixpoint):
//   - local constant folding and propagation (per-block lattice),
//   - local copy propagation,
//   - global dead-code elimination (backward liveness over the CFG),
//   - unreachable-block removal.
//
// The optimizer never moves or removes impure instructions (stores, calls,
// heap ops, SPT hooks) and never removes blocks that remain branch targets,
// so loop identities (function, header label) survive optimization.
package opt

import (
	"repro/internal/cfg"
	"repro/internal/ir"
)

// Optimize returns an optimized deep copy of p. The input is not modified.
func Optimize(p *ir.Program) *ir.Program {
	out := p.Clone()
	for _, f := range out.Funcs {
		optimizeFunc(f)
	}
	out.Finalize()
	return out
}

// Stats reports what the optimizer did to one program.
type Stats struct {
	Folded, Propagated, DeadRemoved, BlocksRemoved int
}

// OptimizeWithStats is Optimize plus pass statistics.
func OptimizeWithStats(p *ir.Program) (*ir.Program, Stats) {
	out := p.Clone()
	var st Stats
	for _, f := range out.Funcs {
		st = st.add(optimizeFunc(f))
	}
	out.Finalize()
	return out, st
}

func (s Stats) add(o Stats) Stats {
	s.Folded += o.Folded
	s.Propagated += o.Propagated
	s.DeadRemoved += o.DeadRemoved
	s.BlocksRemoved += o.BlocksRemoved
	return s
}

func optimizeFunc(f *ir.Func) Stats {
	var total Stats
	for {
		var st Stats
		st.Folded, st.Propagated = localFold(f)
		f.Finalize()
		st.DeadRemoved = deadCode(f)
		f.Finalize()
		st.BlocksRemoved = unreachable(f)
		f.Finalize()
		total = total.add(st)
		if st == (Stats{}) {
			return total
		}
	}
}

// localFold runs constant and copy propagation with folding inside each
// block. The lattice resets at block entry (no cross-block propagation:
// cheap and always safe).
func localFold(f *ir.Func) (folded, propagated int) {
	for _, b := range f.Blocks {
		consts := map[ir.Reg]int64{}  // reg -> known constant
		copies := map[ir.Reg]ir.Reg{} // reg -> copied-from reg
		kill := func(r ir.Reg) {
			delete(consts, r)
			delete(copies, r)
			for dst, src := range copies {
				if src == r {
					delete(copies, dst)
				}
			}
		}
		sub := func(r *ir.Reg) {
			if src, ok := copies[*r]; ok {
				*r = src
				propagated++
			}
		}
		for i := range b.Instrs {
			in := &b.Instrs[i]
			// Substitute copies into sources first.
			nsrc := in.Op.NumSrc()
			if nsrc >= 1 && in.A != ir.NoReg && in.Op != ir.Alloc {
				sub(&in.A)
			}
			if nsrc >= 2 && in.B != ir.NoReg {
				sub(&in.B)
			}
			for j := range in.Args {
				sub(&in.Args[j])
			}
			// Fold.
			switch in.Op {
			case ir.Mov:
				if v, ok := consts[in.A]; ok {
					*in = ir.Instr{Op: ir.MovI, Dst: in.Dst, A: ir.NoReg, B: ir.NoReg, Imm: v, ID: in.ID}
					folded++
				}
			case ir.AddI:
				if v, ok := consts[in.A]; ok {
					*in = ir.Instr{Op: ir.MovI, Dst: in.Dst, A: ir.NoReg, B: ir.NoReg, Imm: v + in.Imm, ID: in.ID}
					folded++
				} else if in.Imm == 0 {
					*in = ir.Instr{Op: ir.Mov, Dst: in.Dst, A: in.A, B: ir.NoReg, ID: in.ID}
					folded++
				}
			case ir.MulI:
				if v, ok := consts[in.A]; ok {
					*in = ir.Instr{Op: ir.MovI, Dst: in.Dst, A: ir.NoReg, B: ir.NoReg, Imm: v * in.Imm, ID: in.ID}
					folded++
				} else if in.Imm == 1 {
					*in = ir.Instr{Op: ir.Mov, Dst: in.Dst, A: in.A, B: ir.NoReg, ID: in.ID}
					folded++
				}
			default:
				if in.Op.IsPure() && nsrc == 2 {
					va, aok := consts[in.A]
					vb, bok := consts[in.B]
					if aok && bok {
						if imm, err := ir.EvalALU(in.Op, va, vb); err == nil {
							*in = ir.Instr{Op: ir.MovI, Dst: in.Dst, A: ir.NoReg, B: ir.NoReg,
								Imm: imm, ID: in.ID}
							folded++
						}
					}
				}
			}
			if in.Op == ir.Br {
				if v, ok := consts[in.A]; ok {
					tgt := in.Target2
					if v != 0 {
						tgt = in.Target
					}
					*in = ir.Instr{Op: ir.Jmp, Dst: ir.NoReg, A: ir.NoReg, B: ir.NoReg, Target: tgt, ID: in.ID}
					folded++
				}
			}
			// Update the lattice.
			if d := in.Def(); d != ir.NoReg {
				kill(d)
				switch in.Op {
				case ir.MovI:
					consts[d] = in.Imm
				case ir.Mov:
					if in.A != d {
						copies[d] = in.A
						if v, ok := consts[in.A]; ok {
							consts[d] = v
						}
					}
				}
			}
		}
	}
	return folded, propagated
}

// deadCode removes pure instructions whose results are never used, via a
// backward liveness fixpoint over the CFG.
func deadCode(f *ir.Func) int {
	g, err := cfg.Build(f)
	if err != nil {
		return 0 // unanalyzable function: optimize nothing, remove nothing
	}
	n := len(f.Blocks)
	liveIn := make([]map[ir.Reg]bool, n)
	liveOut := make([]map[ir.Reg]bool, n)
	for i := range liveIn {
		liveIn[i] = map[ir.Reg]bool{}
		liveOut[i] = map[ir.Reg]bool{}
	}
	changed := true
	var uses []ir.Reg
	for changed {
		changed = false
		for bi := n - 1; bi >= 0; bi-- {
			out := map[ir.Reg]bool{}
			for _, s := range g.Succ[bi] {
				for r := range liveIn[s] {
					out[r] = true
				}
			}
			in := map[ir.Reg]bool{}
			for r := range out {
				in[r] = true
			}
			b := f.Blocks[bi]
			for i := len(b.Instrs) - 1; i >= 0; i-- {
				ins := &b.Instrs[i]
				if d := ins.Def(); d != ir.NoReg {
					delete(in, d)
				}
				uses = ins.Uses(uses[:0])
				for _, r := range uses {
					in[r] = true
				}
			}
			if !sameSet(in, liveIn[bi]) || !sameSet(out, liveOut[bi]) {
				liveIn[bi] = in
				liveOut[bi] = out
				changed = true
			}
		}
	}
	removed := 0
	for bi, b := range f.Blocks {
		live := map[ir.Reg]bool{}
		for r := range liveOut[bi] {
			live[r] = true
		}
		keep := make([]ir.Instr, 0, len(b.Instrs))
		for i := len(b.Instrs) - 1; i >= 0; i-- {
			ins := b.Instrs[i]
			d := ins.Def()
			dead := ins.Op.IsPure() && d != ir.NoReg && !live[d]
			if dead {
				removed++
				continue
			}
			if d != ir.NoReg {
				delete(live, d)
			}
			uses = ins.Uses(uses[:0])
			for _, r := range uses {
				live[r] = true
			}
			keep = append(keep, ins)
		}
		for i, j := 0, len(keep)-1; i < j; i, j = i+1, j-1 {
			keep[i], keep[j] = keep[j], keep[i]
		}
		b.Instrs = keep
	}
	return removed
}

func sameSet(a, b map[ir.Reg]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for r := range a {
		if !b[r] {
			return false
		}
	}
	return true
}

// unreachable removes blocks no path from the entry reaches. The entry
// block (index 0) always stays.
func unreachable(f *ir.Func) int {
	g, err := cfg.Build(f)
	if err != nil {
		return 0 // unanalyzable function: keep all blocks
	}
	var kept []*ir.Block
	removed := 0
	for bi, b := range f.Blocks {
		if bi == 0 || g.Reachable(bi) {
			kept = append(kept, b)
		} else {
			removed++
		}
	}
	f.Blocks = kept
	return removed
}
