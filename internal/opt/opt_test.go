package opt

import (
	"math/rand"
	"testing"

	"repro/internal/interp"
	"repro/internal/ir"
)

func runP(t *testing.T, p *ir.Program) interp.Result {
	t.Helper()
	lp, err := interp.Load(p)
	if err != nil {
		t.Fatalf("Load: %v\n%s", err, p.Disasm())
	}
	m := interp.New(lp)
	m.SetStepLimit(100_000_000)
	res, err := m.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

func TestConstantFolding(t *testing.T) {
	b := ir.NewFuncBuilder("main", 0)
	a, c, d := b.NewReg(), b.NewReg(), b.NewReg()
	b.Block("entry")
	b.MovI(a, 6)
	b.MovI(c, 7)
	b.ALU(ir.Mul, d, a, c) // foldable: 42
	b.AddI(d, d, -2)       // foldable: 40
	b.Ret(d)
	p := ir.NewProgramBuilder("main").AddFunc(b.Done()).Done()
	q, st := OptimizeWithStats(p)
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
	if st.Folded == 0 {
		t.Error("nothing folded")
	}
	if got := runP(t, q); got.Ret != 40 {
		t.Errorf("Ret = %d", got.Ret)
	}
	// The mul and the movi feeding it must be gone after DCE.
	if n := q.EntryFunc().NumInstrs(); n > 3 {
		t.Errorf("optimized function has %d instrs, want <= 3:\n%s", n, q.Disasm())
	}
}

func TestBranchFoldingRemovesUnreachable(t *testing.T) {
	b := ir.NewFuncBuilder("main", 0)
	c, v := b.NewReg(), b.NewReg()
	b.Block("entry")
	b.MovI(c, 1)
	b.Br(c, "then", "els")
	b.Block("then")
	b.MovI(v, 10)
	b.Jmp("done")
	b.Block("els")
	b.MovI(v, 20)
	b.Jmp("done")
	b.Block("done")
	b.Ret(v)
	p := ir.NewProgramBuilder("main").AddFunc(b.Done()).Done()
	q, st := OptimizeWithStats(p)
	if st.BlocksRemoved == 0 {
		t.Error("dead arm not removed")
	}
	if got := runP(t, q); got.Ret != 10 {
		t.Errorf("Ret = %d", got.Ret)
	}
	if q.EntryFunc().BlockByLabel("els") != nil {
		t.Error("unreachable block survived")
	}
}

func TestDCEKeepsImpure(t *testing.T) {
	b := ir.NewFuncBuilder("main", 0)
	g, v, w := b.NewReg(), b.NewReg(), b.NewReg()
	b.Block("entry")
	b.GAddr(g, "cell")
	b.MovI(v, 5)
	b.Store(g, 0, v) // impure: must stay even though nothing reads it back
	b.MovI(w, 9)     // dead: w never used
	b.Ret(v)
	p := ir.NewProgramBuilder("main").AddFunc(b.Done()).AddGlobal("cell", 1).Done()
	q, st := OptimizeWithStats(p)
	if st.DeadRemoved == 0 {
		t.Error("dead movi not removed")
	}
	stores := 0
	for _, blk := range q.EntryFunc().Blocks {
		for i := range blk.Instrs {
			if blk.Instrs[i].Op == ir.Store {
				stores++
			}
		}
	}
	if stores != 1 {
		t.Errorf("store count = %d, want 1", stores)
	}
	r1, r2 := runP(t, p), runP(t, q)
	if r1.MemChecksum != r2.MemChecksum {
		t.Error("optimization changed memory effects")
	}
}

// randomProgram builds a random but valid straight-line+branches program
// for the semantic-preservation property.
func randomProgram(rng *rand.Rand) *ir.Program {
	b := ir.NewFuncBuilder("main", 0)
	const nr = 6
	regs := make([]ir.Reg, nr)
	for i := range regs {
		regs[i] = b.NewReg()
	}
	g := b.NewReg()
	b.Block("entry")
	for i := range regs {
		b.MovI(regs[i], int64(rng.Intn(40)-20))
	}
	b.GAddr(g, "mem")
	ops := []ir.Op{ir.Add, ir.Sub, ir.Mul, ir.And, ir.Or, ir.Xor, ir.CmpLT, ir.CmpEQ}
	emitChunk := func() {
		for k := 0; k < 6+rng.Intn(8); k++ {
			switch rng.Intn(6) {
			case 0:
				b.MovI(regs[rng.Intn(nr)], int64(rng.Intn(100)))
			case 1:
				b.Mov(regs[rng.Intn(nr)], regs[rng.Intn(nr)])
			case 2:
				b.AddI(regs[rng.Intn(nr)], regs[rng.Intn(nr)], int64(rng.Intn(9)-4))
			case 3:
				b.Store(g, int64(rng.Intn(8)), regs[rng.Intn(nr)])
			case 4:
				b.Load(regs[rng.Intn(nr)], g, int64(rng.Intn(8)))
			default:
				b.ALU(ops[rng.Intn(len(ops))], regs[rng.Intn(nr)], regs[rng.Intn(nr)], regs[rng.Intn(nr)])
			}
		}
	}
	emitChunk()
	b.Br(regs[rng.Intn(nr)], "then", "els")
	b.Block("then")
	emitChunk()
	b.Jmp("join")
	b.Block("els")
	emitChunk()
	b.Jmp("join")
	b.Block("join")
	emitChunk()
	b.Ret(regs[rng.Intn(nr)])
	return ir.NewProgramBuilder("main").AddFunc(b.Done()).AddGlobal("mem", 8).Done()
}

func TestOptimizeRandomizedEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(0x0B7))
	for trial := 0; trial < 200; trial++ {
		p := randomProgram(rng)
		if err := p.Validate(); err != nil {
			t.Fatalf("trial %d: invalid input: %v", trial, err)
		}
		q := Optimize(p)
		if err := q.Validate(); err != nil {
			t.Fatalf("trial %d: invalid output: %v\n%s", trial, err, q.Disasm())
		}
		r1, r2 := runP(t, p), runP(t, q)
		if r1.Ret != r2.Ret || r1.MemChecksum != r2.MemChecksum {
			t.Fatalf("trial %d: semantics changed (ret %d vs %d)\n--- before\n%s\n--- after\n%s",
				trial, r1.Ret, r2.Ret, p.Disasm(), q.Disasm())
		}
	}
}

func TestOptimizeIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		p := randomProgram(rng)
		q1 := Optimize(p)
		q2 := Optimize(q1)
		if q1.Disasm() != q2.Disasm() {
			t.Fatalf("optimizer is not idempotent (trial %d)", trial)
		}
	}
}

func TestOptimizeLeavesInputIntact(t *testing.T) {
	p := randomProgram(rand.New(rand.NewSource(8)))
	before := p.Disasm()
	Optimize(p)
	if p.Disasm() != before {
		t.Error("Optimize mutated its input")
	}
}
