package chaos

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"

	"repro/internal/guard"
	"repro/internal/service"
	"repro/spt/client"
)

// passPipeline is a no-fault pipeline stub.
type passPipeline struct{}

func (passPipeline) Compile(_ context.Context, req client.CompileRequest, _ guard.Budget) (*client.CompileResponse, error) {
	return &client.CompileResponse{Benchmark: req.Benchmark}, nil
}
func (passPipeline) Simulate(_ context.Context, req client.SimulateRequest, _ guard.Budget) (*client.SimulateResponse, error) {
	return &client.SimulateResponse{Benchmark: req.Benchmark, Speedup: 2}, nil
}
func (passPipeline) Sweep(_ context.Context, req client.SweepRequest, _ guard.Budget) (*client.SweepResponse, error) {
	return &client.SweepResponse{Benchmark: req.Benchmark}, nil
}

// TestDeterministicDecisions: two injectors built from the same plan make
// identical inject/pass decisions call for call.
func TestDeterministicDecisions(t *testing.T) {
	plan := Plan{Seed: 42, Rules: []Rule{
		{Stage: service.KindSimulate, Fault: FaultError, Prob: 0.3},
		{Stage: service.KindCompile, Fault: FaultError, Every: 3},
	}}
	a, b := New(plan), New(plan)
	for i := 0; i < 200; i++ {
		for ri := range plan.Rules {
			if a.rules[ri].fire() != b.rules[ri].fire() {
				t.Fatalf("decision diverged at call %d rule %d", i, ri)
			}
		}
	}
	if a.InjectedTotal() == 0 {
		t.Fatal("no faults fired in 200 calls at prob 0.3 / every 3")
	}
	if a.InjectedTotal() != b.InjectedTotal() {
		t.Fatal("total injections diverged")
	}
}

// TestMaxCallsQuiesces: a bounded rule stops injecting once its budget is
// spent, so a chaos run converges to fault-free behavior.
func TestMaxCallsQuiesces(t *testing.T) {
	in := New(Plan{Rules: []Rule{{Stage: service.KindSimulate, Fault: FaultError, Every: 1, MaxCalls: 3}}})
	fired := 0
	for i := 0; i < 20; i++ {
		if in.rules[0].fire() {
			fired++
		}
	}
	if fired != 3 {
		t.Fatalf("rule fired %d times, want exactly MaxCalls=3", fired)
	}
}

// TestPipelineErrorFault: an error fault surfaces as ErrInjected from the
// wrapped stage; once spent, calls pass through.
func TestPipelineErrorFault(t *testing.T) {
	in := New(Plan{Rules: []Rule{{Stage: service.KindSimulate, Fault: FaultError, Every: 1, MaxCalls: 1}}})
	p := in.WrapPipeline(passPipeline{})
	_, err := p.Simulate(context.Background(), client.SimulateRequest{Benchmark: "parser"}, guard.Budget{})
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("first call: err = %v, want ErrInjected", err)
	}
	resp, err := p.Simulate(context.Background(), client.SimulateRequest{Benchmark: "parser"}, guard.Budget{})
	if err != nil || resp.Speedup != 2 {
		t.Fatalf("post-quiesce call: %v %+v", err, resp)
	}
	// Other stages are untouched by a simulate-scoped rule.
	if _, err := p.Compile(context.Background(), client.CompileRequest{Benchmark: "parser"}, guard.Budget{}); err != nil {
		t.Fatalf("compile hit a simulate-scoped fault: %v", err)
	}
}

// TestPipelinePanicFaultIsolated: a panic fault thrown inside a stage is
// exactly what guard.Run is built to absorb.
func TestPipelinePanicFaultIsolated(t *testing.T) {
	in := New(Plan{Rules: []Rule{{Stage: service.KindSweep, Fault: FaultPanic, Every: 1, MaxCalls: 1}}})
	p := in.WrapPipeline(passPipeline{})
	err := guard.Run("parser", "sweep", func() error {
		_, e := p.Sweep(context.Background(), client.SweepRequest{Benchmark: "parser"}, guard.Budget{})
		return e
	})
	var se *guard.StageError
	if !errors.As(err, &se) || !se.Panicked {
		t.Fatalf("panic fault not isolated into a StageError: %v", err)
	}
}

// TestMiddlewarePartialTruncates: the partial fault declares the full
// Content-Length but delivers half the body, so the client's read dies
// with an unexpected EOF — the retryable failure mode of satellite (a).
func TestMiddlewarePartialTruncates(t *testing.T) {
	in := New(Plan{Rules: []Rule{{Endpoint: "/v1/jobs", Fault: FaultPartial, Every: 1, MaxCalls: 1}}})
	body := `{"id":"j000001","state":"done","outcome":"ok"}`
	h := in.Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, body)
	}))
	ts := httptest.NewServer(h)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/jobs/j000001")
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	_, rerr := io.ReadAll(resp.Body)
	resp.Body.Close()
	if rerr == nil {
		t.Fatal("truncated response read succeeded; want an unexpected-EOF class error")
	}

	// Fault budget spent: the next request is intact.
	resp, err = http.Get(ts.URL + "/v1/jobs/j000001")
	if err != nil {
		t.Fatal(err)
	}
	got, rerr := io.ReadAll(resp.Body)
	resp.Body.Close()
	if rerr != nil || string(got) != body {
		t.Fatalf("post-quiesce read: %v %q", rerr, got)
	}
}

// TestMiddlewareErrorThenPass: an endpoint error fault 500s the matched
// path only, and non-matching paths are never touched.
func TestMiddlewareErrorThenPass(t *testing.T) {
	in := New(Plan{Rules: []Rule{{Endpoint: "/v1/simulate", Fault: FaultError, Every: 1, MaxCalls: 1}}})
	h := in.Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	ts := httptest.NewServer(h)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("unmatched path faulted: %v %v", err, resp.Status)
	}
	resp.Body.Close()
	resp, err = http.Get(ts.URL + "/v1/simulate")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("matched path status = %d, want 500", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/v1/simulate")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-quiesce status = %d, want 200", resp.StatusCode)
	}
}

// TestSlowlorisDelivers: the slow-stream fault still delivers the complete
// body (slowness, not loss).
func TestSlowlorisDelivers(t *testing.T) {
	in := New(Plan{Rules: []Rule{{Endpoint: "/v1/", Fault: FaultSlowloris, DelayMS: 40, Every: 1, MaxCalls: 1}}})
	body := strings.Repeat("x", 256)
	h := in.Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, body)
	}))
	ts := httptest.NewServer(h)
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/v1/jobs/j1")
	if err != nil {
		t.Fatal(err)
	}
	got, rerr := io.ReadAll(resp.Body)
	resp.Body.Close()
	if rerr != nil || string(got) != body {
		t.Fatalf("slowloris mangled the body: %v (%d bytes)", rerr, len(got))
	}
}

// TestMetricsRender: fault counters surface in Prometheus text form.
func TestMetricsRender(t *testing.T) {
	in := New(Plan{Rules: []Rule{{Stage: service.KindSimulate, Fault: FaultError, Every: 1, MaxCalls: 1}}})
	in.rules[0].fire()
	var sb strings.Builder
	in.Metrics(&sb)
	out := sb.String()
	if !strings.Contains(out, `chaos_faults_injected_total{rule="0",site="simulate",fault="error"} 1`) {
		t.Fatalf("metrics missing fault counter:\n%s", out)
	}
	if !strings.Contains(out, `chaos_calls_total{rule="0"} 1`) {
		t.Fatalf("metrics missing call counter:\n%s", out)
	}
}

// TestLoadPlanRoundtrip: plans persist to JSON for CI.
func TestLoadPlanRoundtrip(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/plan.json"
	if err := writeFile(path, `{"seed":7,"rules":[{"stage":"simulate","fault":"error","every":5,"max_calls":2}]}`); err != nil {
		t.Fatal(err)
	}
	p, err := LoadPlan(path)
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 7 || len(p.Rules) != 1 || p.Rules[0].Fault != FaultError || p.Rules[0].MaxCalls != 2 {
		t.Fatalf("plan decoded wrong: %+v", p)
	}
	if _, err := LoadPlan(dir + "/missing.json"); err == nil {
		t.Fatal("missing plan file did not error")
	}
}

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}
