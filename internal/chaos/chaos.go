// Package chaos is the deterministic fault injector behind the soak
// harness: a seeded Plan of fault rules applied to the serving stack from
// both sides — an HTTP middleware that delays, errors, truncates or
// slow-streams responses, and a Pipeline decorator that delays, fails or
// panics pipeline stages.
//
// Determinism: every rule decides "inject or not" from a hash of
// (plan seed, rule index, per-rule call counter) — no wall clocks, no
// global randomness — so a soak run with the same plan and the same
// request sequence injects the same faults. MaxCalls bounds each rule, so
// a chaos run quiesces: after the budget is spent the stack is fault-free
// and every retried job can converge.
//
// The service layer never imports this package. It hooks in through
// service.Config.WrapPipeline, service.Config.ExtraMetrics and plain
// http.Handler wrapping in cmd/sptd.
package chaos

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"os"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/guard"
	"repro/internal/service"
	"repro/spt/client"
)

// Fault kinds.
const (
	FaultDelay     = "delay"     // sleep DelayMS before proceeding
	FaultError     = "error"     // fail the call (HTTP 500 / pipeline error)
	FaultPanic     = "panic"     // panic inside the pipeline stage (guard isolates it)
	FaultPartial   = "partial"   // send a truncated response body (client sees unexpected EOF)
	FaultSlowloris = "slowloris" // stream the response body slowly
)

// ErrInjected marks a pipeline failure as chaos-made. It classifies as a
// plain failure (retryable by the durability layer), not a cancellation.
var ErrInjected = fmt.Errorf("chaos: injected fault")

// Rule is one fault source. Exactly one of Stage (pipeline side) or
// Endpoint (HTTP side, path-prefix match) selects where it applies.
// Firing is Every-N (deterministic stride) or Prob (seeded hash threshold);
// MaxCalls bounds total injections (0 = unbounded — soak plans should
// always bound).
type Rule struct {
	Stage    string  `json:"stage,omitempty"`    // compile | simulate | sweep
	Endpoint string  `json:"endpoint,omitempty"` // e.g. "/v1/jobs"
	Fault    string  `json:"fault"`
	Every    int     `json:"every,omitempty"`
	Prob     float64 `json:"prob,omitempty"`
	DelayMS  int     `json:"delay_ms,omitempty"`
	MaxCalls int     `json:"max_calls,omitempty"`
}

// Plan is a seeded fault schedule, JSON-loadable for CI.
type Plan struct {
	Seed  int64  `json:"seed"`
	Rules []Rule `json:"rules"`
}

// DefaultPlan is the stock soak schedule: every fault kind on both sides
// of the stack, all rules bounded so the run quiesces.
func DefaultPlan(seed int64) Plan {
	return Plan{
		Seed: seed,
		Rules: []Rule{
			{Stage: service.KindSimulate, Fault: FaultError, Every: 5, MaxCalls: 4},
			{Stage: service.KindSimulate, Fault: FaultPanic, Every: 9, MaxCalls: 2},
			{Stage: service.KindCompile, Fault: FaultError, Every: 4, MaxCalls: 3},
			{Stage: service.KindCompile, Fault: FaultDelay, DelayMS: 40, Every: 3, MaxCalls: 6},
			{Stage: service.KindSweep, Fault: FaultError, Every: 3, MaxCalls: 2},
			{Endpoint: "/v1/jobs", Fault: FaultPartial, Every: 6, MaxCalls: 4},
			{Endpoint: "/v1/jobs", Fault: FaultSlowloris, DelayMS: 120, Every: 11, MaxCalls: 2},
			{Endpoint: "/v1/", Fault: FaultError, Prob: 0.08, MaxCalls: 5},
			{Endpoint: "/v1/", Fault: FaultDelay, DelayMS: 30, Prob: 0.1, MaxCalls: 8},
		},
	}
}

// LoadPlan reads a Plan from a JSON file.
func LoadPlan(path string) (Plan, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return Plan{}, err
	}
	var p Plan
	if err := json.Unmarshal(b, &p); err != nil {
		return Plan{}, fmt.Errorf("chaos: parse plan %s: %w", path, err)
	}
	return p, nil
}

// ruleState is a Rule plus its live counters.
type ruleState struct {
	rule     Rule
	idx      int
	seed     int64
	calls    atomic.Int64
	injected atomic.Int64
}

// fire decides deterministically whether this call is faulted.
func (r *ruleState) fire() bool {
	n := r.calls.Add(1)
	var hit bool
	switch {
	case r.rule.Every > 0:
		hit = n%int64(r.rule.Every) == 0
	case r.rule.Prob > 0:
		hit = hashUnit(r.seed, r.idx, n) < r.rule.Prob
	}
	if !hit {
		return false
	}
	inj := r.injected.Add(1)
	if r.rule.MaxCalls > 0 && inj > int64(r.rule.MaxCalls) {
		r.injected.Add(-1)
		return false
	}
	return true
}

// hashUnit maps (seed, rule, call) onto [0,1) with FNV-64 — stable across
// runs and platforms.
func hashUnit(seed int64, idx int, call int64) float64 {
	h := fnv.New64a()
	var b [24]byte
	binary.LittleEndian.PutUint64(b[0:], uint64(seed))
	binary.LittleEndian.PutUint64(b[8:], uint64(idx))
	binary.LittleEndian.PutUint64(b[16:], uint64(call))
	_, _ = h.Write(b[:])
	return float64(h.Sum64()>>11) / float64(1<<53)
}

// Injector applies a Plan. One Injector serves both the HTTP middleware
// and the pipeline decorator so /metrics shows one coherent fault count.
type Injector struct {
	plan  Plan
	rules []*ruleState
}

// New builds an Injector for plan.
func New(plan Plan) *Injector {
	inj := &Injector{plan: plan}
	for i, r := range plan.Rules {
		inj.rules = append(inj.rules, &ruleState{rule: r, idx: i, seed: plan.Seed})
	}
	return inj
}

// InjectedTotal returns how many faults have fired so far.
func (in *Injector) InjectedTotal() int64 {
	var n int64
	for _, r := range in.rules {
		n += r.injected.Load()
	}
	return n
}

// Metrics renders the injector's counters in Prometheus text format; wire
// it into service.Config.ExtraMetrics.
func (in *Injector) Metrics(w io.Writer) {
	fmt.Fprintf(w, "# HELP chaos_faults_injected_total Faults fired per plan rule.\n# TYPE chaos_faults_injected_total counter\n")
	for _, r := range in.rules {
		site := r.rule.Stage
		if site == "" {
			site = r.rule.Endpoint
		}
		fmt.Fprintf(w, "chaos_faults_injected_total{rule=\"%d\",site=%q,fault=%q} %d\n",
			r.idx, site, r.rule.Fault, r.injected.Load())
	}
	fmt.Fprintf(w, "# HELP chaos_calls_total Calls evaluated per plan rule.\n# TYPE chaos_calls_total counter\n")
	for _, r := range in.rules {
		fmt.Fprintf(w, "chaos_calls_total{rule=\"%d\"} %d\n", r.idx, r.calls.Load())
	}
}

// stageFault evaluates the pipeline-side rules for stage; it sleeps for
// delay faults, returns an ErrInjected-wrapped error for error faults and
// panics for panic faults (guard.Run turns that into a structured
// StageError without killing the worker).
func (in *Injector) stageFault(ctx context.Context, stage string) error {
	for _, r := range in.rules {
		if r.rule.Stage == "" || r.rule.Stage != stage {
			continue
		}
		if !r.fire() {
			continue
		}
		switch r.rule.Fault {
		case FaultDelay:
			sleepCtx(ctx, time.Duration(r.rule.DelayMS)*time.Millisecond)
		case FaultError:
			return fmt.Errorf("%w: stage %s (rule %d)", ErrInjected, stage, r.idx)
		case FaultPanic:
			panic(fmt.Sprintf("chaos: injected panic in stage %s (rule %d)", stage, r.idx))
		}
	}
	return nil
}

func sleepCtx(ctx context.Context, d time.Duration) {
	if d <= 0 {
		return
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}

// WrapPipeline decorates p with the plan's stage faults; pass it as
// service.Config.WrapPipeline.
func (in *Injector) WrapPipeline(p service.Pipeline) service.Pipeline {
	return &chaosPipeline{inj: in, next: p}
}

type chaosPipeline struct {
	inj  *Injector
	next service.Pipeline
}

func (c *chaosPipeline) Compile(ctx context.Context, req client.CompileRequest, b guard.Budget) (*client.CompileResponse, error) {
	if err := c.inj.stageFault(ctx, service.KindCompile); err != nil {
		return nil, err
	}
	return c.next.Compile(ctx, req, b)
}

func (c *chaosPipeline) Simulate(ctx context.Context, req client.SimulateRequest, b guard.Budget) (*client.SimulateResponse, error) {
	if err := c.inj.stageFault(ctx, service.KindSimulate); err != nil {
		return nil, err
	}
	return c.next.Simulate(ctx, req, b)
}

func (c *chaosPipeline) Sweep(ctx context.Context, req client.SweepRequest, b guard.Budget) (*client.SweepResponse, error) {
	if err := c.inj.stageFault(ctx, service.KindSweep); err != nil {
		return nil, err
	}
	return c.next.Sweep(ctx, req, b)
}

// Middleware applies the endpoint-side rules around next. Delay and error
// faults act before the handler; partial and slowloris faults capture the
// handler's response and mangle its delivery.
func (in *Injector) Middleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var mangle *ruleState
		for _, rs := range in.rules {
			if rs.rule.Endpoint == "" || !strings.HasPrefix(r.URL.Path, rs.rule.Endpoint) {
				continue
			}
			if !rs.fire() {
				continue
			}
			switch rs.rule.Fault {
			case FaultDelay:
				sleepCtx(r.Context(), time.Duration(rs.rule.DelayMS)*time.Millisecond)
			case FaultError:
				w.Header().Set("Content-Type", "application/json")
				w.WriteHeader(http.StatusInternalServerError)
				fmt.Fprintf(w, "{\"error\":\"chaos: injected error (rule %d)\"}\n", rs.idx)
				return
			case FaultPartial, FaultSlowloris:
				if mangle == nil {
					mangle = rs // first mangler wins; body is captured once
				}
			}
		}
		if mangle == nil {
			next.ServeHTTP(w, r)
			return
		}
		rec := &captureWriter{hdr: make(http.Header), status: http.StatusOK}
		next.ServeHTTP(rec, r)
		for k, vs := range rec.hdr {
			w.Header()[k] = vs
		}
		body := rec.buf.Bytes()
		switch mangle.rule.Fault {
		case FaultPartial:
			// Declare the full length, deliver half: net/http notices the
			// short handler and closes the connection mid-body, so the
			// client's read fails with an unexpected EOF — exactly the
			// truncating-server failure the resilient client must retry.
			w.Header().Set("Content-Length", fmt.Sprintf("%d", len(body)))
			w.WriteHeader(rec.status)
			_, _ = w.Write(body[:len(body)/2])
		case FaultSlowloris:
			w.WriteHeader(rec.status)
			streamSlow(w, r.Context(), body, time.Duration(mangle.rule.DelayMS)*time.Millisecond)
		}
	})
}

// captureWriter buffers a handler's response so the middleware can replay
// it mangled.
type captureWriter struct {
	hdr    http.Header
	status int
	buf    bytes.Buffer
}

func (c *captureWriter) Header() http.Header       { return c.hdr }
func (c *captureWriter) WriteHeader(code int)      { c.status = code }
func (c *captureWriter) Write(p []byte) (int, error) { return c.buf.Write(p) }

// streamSlow dribbles body out in eight chunks spread across total,
// flushing between writes.
func streamSlow(w http.ResponseWriter, ctx context.Context, body []byte, total time.Duration) {
	const chunks = 8
	step := total / chunks
	fl, _ := w.(http.Flusher)
	for i := 0; i < chunks; i++ {
		lo, hi := i*len(body)/chunks, (i+1)*len(body)/chunks
		if _, err := w.Write(body[lo:hi]); err != nil {
			return
		}
		if fl != nil {
			fl.Flush()
		}
		if i < chunks-1 {
			sleepCtx(ctx, step)
		}
	}
}
