// Package bpred implements the GAg branch predictor of the paper's default
// machine (Table 1): a single global history register indexing a table of
// 1K two-bit saturating counters, with a 5-cycle misprediction penalty
// applied by the pipeline model.
package bpred

// GAg is a global-history two-level adaptive predictor with a single
// pattern history table (the "GAg" scheme of Yeh & Patt).
type GAg struct {
	history uint32
	mask    uint32
	table   []uint8

	Lookups, Mispredicts int64
}

// New returns a GAg predictor with the given number of pattern-table
// entries (rounded down to a power of two; minimum 2).
func New(entries int) *GAg {
	n := 2
	for n*2 <= entries {
		n *= 2
	}
	return &GAg{mask: uint32(n - 1), table: make([]uint8, n)}
}

// Predict consults the predictor for a branch whose actual outcome is
// taken, updates the history and counters, and reports whether the
// prediction was correct.
func (g *GAg) Predict(taken bool) bool {
	idx := g.history & g.mask
	ctr := g.table[idx]
	pred := ctr >= 2
	g.Lookups++
	if taken {
		if ctr < 3 {
			g.table[idx] = ctr + 1
		}
	} else if ctr > 0 {
		g.table[idx] = ctr - 1
	}
	g.history = (g.history << 1) & g.mask
	if taken {
		g.history |= 1
	}
	correct := pred == taken
	if !correct {
		g.Mispredicts++
	}
	return correct
}

// MispredictRate returns the fraction of mispredicted lookups.
func (g *GAg) MispredictRate() float64 {
	if g.Lookups == 0 {
		return 0
	}
	return float64(g.Mispredicts) / float64(g.Lookups)
}
