package bpred

import "testing"

func TestAlwaysTakenLearned(t *testing.T) {
	g := New(1024)
	wrong := 0
	for i := 0; i < 1000; i++ {
		if !g.Predict(true) && i > 20 {
			wrong++
		}
	}
	if wrong != 0 {
		t.Errorf("always-taken mispredicted %d times after warmup", wrong)
	}
}

func TestAlternatingLearned(t *testing.T) {
	// GAg learns the alternating pattern through global history.
	g := New(1024)
	wrong := 0
	for i := 0; i < 2000; i++ {
		taken := i%2 == 0
		if !g.Predict(taken) && i > 100 {
			wrong++
		}
	}
	if wrong > 10 {
		t.Errorf("alternating pattern mispredicted %d times after warmup", wrong)
	}
}

func TestLoopExitPattern(t *testing.T) {
	// taken^9, not-taken — a 10-iteration loop. With 10 bits of history the
	// exit becomes predictable.
	g := New(1024)
	wrong := 0
	total := 0
	for rep := 0; rep < 300; rep++ {
		for i := 0; i < 10; i++ {
			taken := i != 9
			if rep > 30 {
				total++
				if !g.Predict(taken) {
					wrong++
				}
			} else {
				g.Predict(taken)
			}
		}
	}
	rate := float64(wrong) / float64(total)
	if rate > 0.05 {
		t.Errorf("loop pattern mispredict rate = %v, want < 5%%", rate)
	}
}

func TestMispredictRateAccounting(t *testing.T) {
	g := New(16)
	for i := 0; i < 100; i++ {
		g.Predict(i%3 == 0)
	}
	if g.Lookups != 100 {
		t.Errorf("lookups = %d", g.Lookups)
	}
	r := g.MispredictRate()
	if r < 0 || r > 1 {
		t.Errorf("rate = %v", r)
	}
	if g2 := New(8); g2.MispredictRate() != 0 {
		t.Error("empty predictor rate != 0")
	}
}

func TestTableSizeRounding(t *testing.T) {
	g := New(1000) // rounds down to 512
	if len(g.table) != 512 {
		t.Errorf("table size = %d, want 512", len(g.table))
	}
	g = New(1024)
	if len(g.table) != 1024 {
		t.Errorf("table size = %d, want 1024", len(g.table))
	}
	g = New(1)
	if len(g.table) != 2 {
		t.Errorf("minimum table size = %d, want 2", len(g.table))
	}
}
