package bpred

import "testing"

func BenchmarkPredict(b *testing.B) {
	g := New(1024)
	for i := 0; i < b.N; i++ {
		g.Predict(i%7 != 0)
	}
}
