//go:build linux

package nativecap

import (
	"os/exec"
	"syscall"
)

// setProcAttr arranges for the worker to die with its parent so a crashed
// daemon never strands capture subprocesses.
func setProcAttr(cmd *exec.Cmd) {
	cmd.SysProcAttr = &syscall.SysProcAttr{Pdeathsig: syscall.SIGKILL}
}
