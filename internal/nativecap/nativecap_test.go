package nativecap

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/arch"
	"repro/internal/bench"
	"repro/internal/compiler"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/opt"
	"repro/internal/trace"
)

func testCapturer(t *testing.T, opts Options) *Capturer {
	t.Helper()
	if opts.Dir == "" {
		opts.Dir = t.TempDir()
	}
	c, err := New(opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(c.Close)
	return c
}

func requireToolchain(t *testing.T, c *Capturer) {
	t.Helper()
	if c.goToolErr != nil {
		t.Skipf("go toolchain unavailable: %v", c.goToolErr)
	}
}

// captureBoth runs the native path and an independent interpreter capture
// and returns both results for comparison.
func captureBoth(t *testing.T, c *Capturer, p *ir.Program, stepLimit int64) (native, interpRec *trace.Recording, nerr, ierr error) {
	t.Helper()
	lp, err := interp.Load(p)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	interpRec, ierr = arch.RecordTrace(context.Background(), lp, stepLimit)
	native, nerr = c.Capture(context.Background(), p, lp, stepLimit)
	return native, interpRec, nerr, ierr
}

func assertParity(t *testing.T, label string, c *Capturer, p *ir.Program, stepLimit int64) {
	t.Helper()
	native, want, nerr, ierr := captureBoth(t, c, p, stepLimit)
	if (nerr == nil) != (ierr == nil) {
		t.Fatalf("%s: error class diverges: native %v, interp %v", label, nerr, ierr)
	}
	if ierr != nil {
		if errors.Is(ierr, interp.ErrStepLimit) != errors.Is(nerr, interp.ErrStepLimit) {
			t.Fatalf("%s: limit class diverges: native %v, interp %v", label, nerr, ierr)
		}
		return
	}
	defer want.Release()
	defer native.Release()
	if native.Steps() != want.Steps() || native.Len() != want.Len() {
		t.Fatalf("%s: shape diverges: native %d steps/%d events, interp %d steps/%d events",
			label, native.Steps(), native.Len(), want.Steps(), want.Len())
	}
	if native.Checksum() != want.Checksum() {
		t.Fatalf("%s: checksum diverges: native %#x, interp %#x", label, native.Checksum(), want.Checksum())
	}
}

// testPrograms returns the full parity matrix: every benchmark in both its
// optimized-baseline and SPT-compiled form, at scale 1.
func testPrograms(t *testing.T) map[string]*ir.Program {
	t.Helper()
	progs := make(map[string]*ir.Program)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, b := range bench.All() {
		wg.Add(1)
		go func(b bench.Benchmark) {
			defer wg.Done()
			orig := opt.Optimize(b.Build(1))
			cres, err := compiler.Compile(orig, bench.CompilerOptions(b.Name))
			mu.Lock()
			defer mu.Unlock()
			progs[b.Name+"/opt"] = orig
			if err != nil {
				t.Errorf("%s: compile: %v", b.Name, err)
				return
			}
			progs[b.Name+"/spt"] = cres.Program
		}(b)
	}
	wg.Wait()
	return progs
}

// TestNativeCaptureParity is the acceptance matrix: native capture must be
// bit-identical (same Checksum) to the interpreter for every benchmark
// program in both optimized and SPT-compiled form, with zero fallbacks.
func TestNativeCaptureParity(t *testing.T) {
	if testing.Short() {
		t.Skip("builds native modules")
	}
	c := testCapturer(t, Options{DisableVerify: true})
	requireToolchain(t, c)
	progs := testPrograms(t)
	var ran atomic.Int64
	for label, p := range progs {
		t.Run(label, func(t *testing.T) {
			p := p
			t.Parallel()
			ran.Add(1)
			assertParity(t, label, c, p, 0)
		})
	}
	t.Cleanup(func() {
		s := c.Stats()
		if s.Native != ran.Load() {
			t.Errorf("native captures = %d, want %d (stats %+v)", s.Native, ran.Load(), s)
		}
		if s.FallbackNoToolchain+s.FallbackBuildError+s.FallbackRunError+s.FallbackMismatch != 0 {
			t.Errorf("unexpected fallbacks: %+v", s)
		}
	})
}

// TestNativeCaptureStepLimits exercises the ErrStepLimit parity contract on
// the Figure 1 parser benchmark across the edge cases: far below the run
// length, the ctx-poll boundary, and exactly at/around the full step count.
func TestNativeCaptureStepLimits(t *testing.T) {
	if testing.Short() {
		t.Skip("builds native modules")
	}
	c := testCapturer(t, Options{DisableVerify: true})
	requireToolchain(t, c)
	p := opt.Optimize(mustBench(t, "parser").Build(1))
	lp, err := interp.Load(p)
	if err != nil {
		t.Fatal(err)
	}
	full, err := arch.RecordTrace(context.Background(), lp, 0)
	if err != nil {
		t.Fatal(err)
	}
	n := full.Steps()
	full.Release()
	for _, limit := range []int64{1, 1024, 1025, n - 1, n, n + 1} {
		assertParity(t, "parser/limit", c, p, limit)
	}
}

// TestNativeCaptureOracle verifies the differential first-use pass: a clean
// module is verified once and trusted after; a tampered generator is caught
// by the checksum comparison, quarantined, and every capture falls back.
func TestNativeCaptureOracle(t *testing.T) {
	if testing.Short() {
		t.Skip("builds native modules")
	}
	p := opt.Optimize(mustBench(t, "parser").Build(1))
	lp, err := interp.Load(p)
	if err != nil {
		t.Fatal(err)
	}

	t.Run("verify-then-trust", func(t *testing.T) {
		c := testCapturer(t, Options{})
		requireToolchain(t, c)
		rec, err := c.Capture(context.Background(), p, lp, 0)
		if err != nil {
			t.Fatal(err)
		}
		rec.Release()
		m := c.moduleFor(p)
		if !m.meta.Verified {
			t.Fatal("module not verified after clean differential run")
		}
		rec, err = c.Capture(context.Background(), p, lp, 0)
		if err != nil {
			t.Fatal(err)
		}
		rec.Release()
		if s := c.Stats(); s.Native != 2 || s.FallbackMismatch != 0 {
			t.Fatalf("stats after trusted reuse: %+v", s)
		}
	})

	t.Run("mismatch-quarantines", func(t *testing.T) {
		c := testCapturer(t, Options{})
		requireToolchain(t, c)
		c.genOpts.tamperFrames = true // diverging frame ids => checksum mismatch
		rec, err := c.Capture(context.Background(), p, lp, 0)
		if err != nil {
			t.Fatal(err)
		}
		if want, _ := arch.RecordTrace(context.Background(), lp, 0); want.Checksum() != rec.Checksum() {
			t.Error("mismatch fallback did not return the interpreter's recording")
		} else {
			want.Release()
		}
		rec.Release()
		m := c.moduleFor(p)
		if !m.meta.Quarantined {
			t.Fatal("diverging module not quarantined")
		}
		// Quarantine persists in meta.json: a fresh capturer over the same
		// dir must not trust the module either.
		rec2, err := c.Capture(context.Background(), p, lp, 0)
		if err != nil {
			t.Fatal(err)
		}
		rec2.Release()
		if s := c.Stats(); s.Native != 0 || s.FallbackMismatch != 2 {
			t.Fatalf("stats after quarantine: %+v", s)
		}
		c2 := testCapturer(t, Options{Dir: c.dir})
		c2.genOpts.tamperFrames = true
		rec3, err := c2.Capture(context.Background(), p, lp, 0)
		if err != nil {
			t.Fatal(err)
		}
		rec3.Release()
		if s := c2.Stats(); s.Native != 0 || s.FallbackMismatch != 1 {
			t.Fatalf("stats after restart over quarantined dir: %+v", s)
		}
	})
}

// TestNativeCaptureFallbacks covers the remaining rungs of the fallback
// ladder: missing toolchain, failing build, and a worker that dies.
func TestNativeCaptureFallbacks(t *testing.T) {
	if testing.Short() {
		t.Skip("builds native modules")
	}
	p := opt.Optimize(mustBench(t, "parser").Build(1))
	lp, err := interp.Load(p)
	if err != nil {
		t.Fatal(err)
	}

	t.Run("no-toolchain", func(t *testing.T) {
		c := testCapturer(t, Options{GoTool: filepath.Join(t.TempDir(), "missing-go")})
		rec, err := c.Capture(context.Background(), p, lp, 0)
		if err != nil {
			t.Fatal(err)
		}
		rec.Release()
		if s := c.Stats(); s.Native != 0 || s.FallbackNoToolchain != 1 {
			t.Fatalf("stats: %+v", s)
		}
	})

	t.Run("build-error", func(t *testing.T) {
		c := testCapturer(t, Options{})
		requireToolchain(t, c)
		c.tamperSource = func(src []byte) []byte {
			return append(src, []byte("\nfunc main() { /* duplicate */ }\n")...)
		}
		rec, err := c.Capture(context.Background(), p, lp, 0)
		if err != nil {
			t.Fatal(err)
		}
		rec.Release()
		if s := c.Stats(); s.Native != 0 || s.FallbackBuildError != 1 {
			t.Fatalf("stats: %+v", s)
		}
		// The build failure is sticky: no rebuild storm on reuse.
		rec, err = c.Capture(context.Background(), p, lp, 0)
		if err != nil {
			t.Fatal(err)
		}
		rec.Release()
		if s := c.Stats(); s.FallbackBuildError != 2 {
			t.Fatalf("stats after retry: %+v", s)
		}
	})

	t.Run("worker-crash-respawns", func(t *testing.T) {
		c := testCapturer(t, Options{DisableVerify: true})
		requireToolchain(t, c)
		rec, err := c.Capture(context.Background(), p, lp, 0)
		if err != nil {
			t.Fatal(err)
		}
		rec.Release()
		m := c.moduleFor(p)
		m.mu.Lock()
		if m.worker == nil {
			m.mu.Unlock()
			t.Fatal("no resident worker after capture")
		}
		_ = m.worker.cmd.Process.Kill()
		m.mu.Unlock()
		rec, err = c.Capture(context.Background(), p, lp, 0)
		if err != nil {
			t.Fatalf("capture after worker death: %v", err)
		}
		rec.Release()
		if s := c.Stats(); s.Native != 2 || s.FallbackRunError != 0 {
			t.Fatalf("stats: %+v", s)
		}
	})

	t.Run("run-error", func(t *testing.T) {
		c := testCapturer(t, Options{DisableVerify: true})
		requireToolchain(t, c)
		rec, err := c.Capture(context.Background(), p, lp, 0)
		if err != nil {
			t.Fatal(err)
		}
		rec.Release()
		// Replace the verified binary with one that exits immediately: both
		// the first attempt and the respawn retry fail, so the capture falls
		// back with reason run-error.
		m := c.moduleFor(p)
		m.mu.Lock()
		if m.worker != nil {
			m.worker.kill()
			m.worker = nil
		}
		if err := os.WriteFile(filepath.Join(m.dir, "bin"), []byte("#!/bin/sh\nexit 0\n"), 0o755); err != nil {
			m.mu.Unlock()
			t.Fatal(err)
		}
		m.mu.Unlock()
		rec, err = c.Capture(context.Background(), p, lp, 0)
		if err != nil {
			t.Fatal(err)
		}
		rec.Release()
		if s := c.Stats(); s.FallbackRunError != 1 {
			t.Fatalf("stats: %+v", s)
		}
	})
}

// TestModuleEviction checks the byte-LRU bound on the compiled-module dir.
func TestModuleEviction(t *testing.T) {
	if testing.Short() {
		t.Skip("builds native modules")
	}
	c := testCapturer(t, Options{DisableVerify: true, MaxBytes: 1})
	requireToolchain(t, c)
	for _, name := range []string{"parser", "mcf"} {
		p := opt.Optimize(mustBench(t, name).Build(1))
		lp, err := interp.Load(p)
		if err != nil {
			t.Fatal(err)
		}
		rec, err := c.Capture(context.Background(), p, lp, 0)
		if err != nil {
			t.Fatal(err)
		}
		rec.Release()
	}
	s := c.Stats()
	if s.Native != 2 {
		t.Fatalf("captures did not stay native across eviction: %+v", s)
	}
	if s.Evictions == 0 {
		t.Fatalf("1-byte budget evicted nothing: %+v", s)
	}
}

func mustBench(t *testing.T, name string) bench.Benchmark {
	t.Helper()
	b, ok := bench.ByName(name)
	if !ok {
		t.Fatalf("unknown benchmark %q", name)
	}
	return b
}
