package nativecap

import (
	"context"
	"errors"
	"os"
	"sync"
	"testing"

	"repro/internal/arch"
	"repro/internal/interp"
	"repro/internal/lang"
	"repro/internal/opt"
)

// fuzzCapturer is shared by every fuzz iteration in the process: module
// builds are the expensive part, and the content-addressed cache makes
// repeated executions of the same mutated program free.
var fuzzCapturer = sync.OnceValues(func() (*Capturer, error) {
	dir, err := os.MkdirTemp("", "nativecap-fuzz-*")
	if err != nil {
		return nil, err
	}
	return New(Options{Dir: dir, MaxBytes: 64 << 20, DisableVerify: true})
})

// FuzzNativeCaptureParity feeds mutated MiniC programs through the full
// front end and compares the native capture against the interpreter: same
// checksum and step count on success, same error class (step limit vs
// fault) otherwise. DisableVerify bypasses the differential oracle so a
// codegen bug cannot hide behind its own safety net — the fuzz body IS the
// oracle here.
func FuzzNativeCaptureParity(f *testing.F) {
	if testing.Short() {
		f.Skip("builds native modules")
	}
	// The Figure 1 pattern (list build, walk, free) exercises alloc/free
	// reuse and loads/stores; the recursive seed exercises deep call events;
	// the loop seed exercises branch-taken columns and the step-limit edges
	// around the 1024-step ctx-poll cadence.
	fig1 := `
func main() {
    var head = 0;
    var i;
    for (i = 1; i <= 50; i = i + 1) {
        var node = alloc(2);
        store(node, 0, i * i);
        store(node, 1, head);
        head = node;
    }
    var sum = 0;
    var c = head;
    while (c != 0) {
        var nxt = load(c, 1);
        sum = sum + load(c, 0);
        free(c);
        c = nxt;
    }
    return sum;
}`
	for _, limit := range []int64{0, 1, 1024, 1025} {
		f.Add(fig1, limit)
	}
	f.Add("func fib(n) { if (n < 2) { return n; } return fib(n - 1) + fib(n - 2); } func main() { return fib(10); }", int64(0))
	f.Add("func main() { var i; var s = 0; for (i = 0; i < 100; i = i + 1) { s = s + i; } return s; }", int64(37))
	f.Add("func main() { return free(alloc(0 - 1)); }", int64(0)) // heap fault parity
	f.Fuzz(func(t *testing.T, src string, stepLimit int64) {
		if len(src) > 2048 {
			t.Skip("source too large to build as a module")
		}
		p, err := lang.Compile(src)
		if err != nil {
			t.Skip("front end rejected input")
		}
		p = opt.Optimize(p)
		lp, err := interp.Load(p)
		if err != nil {
			t.Skip("program failed to load")
		}
		c, err := fuzzCapturer()
		if err != nil {
			t.Fatalf("capturer: %v", err)
		}
		if c.goToolErr != nil {
			t.Skip("go toolchain unavailable")
		}
		// Mutated programs can loop forever; a hard cap keeps every
		// iteration bounded while leaving the seeds' limits meaningful.
		if stepLimit <= 0 || stepLimit > 1<<20 {
			stepLimit = 1 << 20
		}
		want, ierr := arch.RecordTrace(context.Background(), lp, stepLimit)
		native, nerr := c.Capture(context.Background(), p, lp, stepLimit)
		if s := c.Stats(); s.FallbackBuildError > 0 {
			t.Fatalf("generated module failed to build (stats %+v)", s)
		}
		if (nerr == nil) != (ierr == nil) {
			t.Fatalf("error class diverges: native %v, interp %v", nerr, ierr)
		}
		if ierr != nil {
			if errors.Is(ierr, interp.ErrStepLimit) != errors.Is(nerr, interp.ErrStepLimit) {
				t.Fatalf("limit class diverges: native %v, interp %v", nerr, ierr)
			}
			return
		}
		defer want.Release()
		defer native.Release()
		if native.Steps() != want.Steps() || native.Checksum() != want.Checksum() {
			t.Fatalf("capture diverges: native %d steps %#x, interp %d steps %#x",
				native.Steps(), native.Checksum(), want.Steps(), want.Checksum())
		}
	})
}
