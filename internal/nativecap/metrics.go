package nativecap

import (
	"fmt"
	"io"
)

// WriteMetrics renders the capturer's counters in Prometheus text format,
// matching the hand-rolled style of internal/service's registry. A nil
// Capturer writes the same series with zero values so scrapes are stable
// whether or not native capture is enabled.
func (c *Capturer) WriteMetrics(w io.Writer) {
	s := c.Stats()
	fmt.Fprintf(w, "# HELP sptd_capture_native_total Trace captures served by a compiled native module.\n")
	fmt.Fprintf(w, "# TYPE sptd_capture_native_total counter\n")
	fmt.Fprintf(w, "sptd_capture_native_total %d\n", s.Native)
	fmt.Fprintf(w, "# HELP sptd_capture_fallback_total Trace captures that fell back to the interpreter.\n")
	fmt.Fprintf(w, "# TYPE sptd_capture_fallback_total counter\n")
	fmt.Fprintf(w, "sptd_capture_fallback_total{reason=%q} %d\n", "no-toolchain", s.FallbackNoToolchain)
	fmt.Fprintf(w, "sptd_capture_fallback_total{reason=%q} %d\n", "build-error", s.FallbackBuildError)
	fmt.Fprintf(w, "sptd_capture_fallback_total{reason=%q} %d\n", "run-error", s.FallbackRunError)
	fmt.Fprintf(w, "sptd_capture_fallback_total{reason=%q} %d\n", "mismatch", s.FallbackMismatch)
	fmt.Fprintf(w, "# HELP sptd_capture_module_cache_bytes Bytes used by the compiled native-capture module cache.\n")
	fmt.Fprintf(w, "# TYPE sptd_capture_module_cache_bytes gauge\n")
	fmt.Fprintf(w, "sptd_capture_module_cache_bytes %d\n", s.ModuleBytes)
	fmt.Fprintf(w, "# HELP sptd_capture_modules Compiled native-capture modules on disk.\n")
	fmt.Fprintf(w, "# TYPE sptd_capture_modules gauge\n")
	fmt.Fprintf(w, "sptd_capture_modules %d\n", s.Modules)
	fmt.Fprintf(w, "# HELP sptd_capture_module_evictions_total Native-capture modules evicted by the byte bound.\n")
	fmt.Fprintf(w, "# TYPE sptd_capture_module_evictions_total counter\n")
	fmt.Fprintf(w, "sptd_capture_module_evictions_total %d\n", s.Evictions)
}
