package nativecap

import (
	"context"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/arch"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/trace"
)

// Options configure a Capturer. The zero value is usable: a default cache
// directory under the system temp dir, a 256 MiB module budget, the first
// `go` on PATH, and differential verification enabled.
type Options struct {
	// Dir is the module cache directory. Defaults to
	// <os.TempDir()>/sptd-nativecap.
	Dir string
	// MaxBytes bounds the on-disk module cache; least-recently-used modules
	// are evicted past it. Defaults to 256 MiB.
	MaxBytes int64
	// GoTool is the path of the Go toolchain used to build modules. Empty
	// means look up "go" on PATH at construction time; a missing toolchain
	// is not an error — every capture falls back to the interpreter with
	// reason "no-toolchain".
	GoTool string
	// MaxWorkers bounds resident worker subprocesses. Defaults to 4.
	MaxWorkers int
	// DisableVerify trusts native captures without the first-use
	// differential interpreter run. Tests use it to measure the native path
	// in isolation; production keeps it false.
	DisableVerify bool
}

// Stats is a point-in-time snapshot of capture outcomes.
type Stats struct {
	Native              int64 // captures served by a native module
	FallbackNoToolchain int64
	FallbackBuildError  int64
	FallbackRunError    int64
	FallbackMismatch    int64 // oracle mismatches and quarantined reuse
	Modules             int   // modules currently on disk
	ModuleBytes         int64 // bytes used by the module cache
	Evictions           int64
}

// Capturer owns the module cache and the resident workers, and decides per
// capture whether the native path can be trusted. It is safe for concurrent
// use. A nil Capturer is valid and always uses the interpreter.
type Capturer struct {
	dir           string
	tmpDir        string
	maxBytes      int64
	maxWorkers    int
	goTool        string
	goToolErr     error
	disableVerify bool

	// test hooks
	genOpts      genOptions
	tamperSource func([]byte) []byte

	mu          sync.Mutex
	modules     map[string]*module
	moduleBytes int64
	evictions   int64

	native              atomic.Int64
	fallbackNoToolchain atomic.Int64
	fallbackBuildError  atomic.Int64
	fallbackRunError    atomic.Int64
	fallbackMismatch    atomic.Int64
}

// New creates a Capturer, restoring any modules a previous process left in
// the cache directory (their verification verdicts persist in meta.json)
// and clearing stale capture temp files.
func New(opts Options) (*Capturer, error) {
	dir := opts.Dir
	if dir == "" {
		dir = filepath.Join(os.TempDir(), "sptd-nativecap")
	}
	maxBytes := opts.MaxBytes
	if maxBytes <= 0 {
		maxBytes = 256 << 20
	}
	maxWorkers := opts.MaxWorkers
	if maxWorkers <= 0 {
		maxWorkers = 4
	}
	c := &Capturer{
		dir:           dir,
		tmpDir:        filepath.Join(dir, "tmp"),
		maxBytes:      maxBytes,
		maxWorkers:    maxWorkers,
		goTool:        opts.GoTool,
		disableVerify: opts.DisableVerify,
		modules:       make(map[string]*module),
	}
	if c.goTool == "" {
		c.goTool, c.goToolErr = exec.LookPath("go")
	} else if _, err := os.Stat(c.goTool); err != nil {
		c.goToolErr = err
	}
	if !mmapSupported && c.goToolErr == nil {
		// No shared-memory hand-off means no native path at all; report it
		// through the same always-fallback gate as a missing toolchain.
		c.goToolErr = errors.New("nativecap: shared-memory capture unsupported on this platform")
	}
	if err := os.MkdirAll(c.tmpDir, 0o755); err != nil {
		return nil, err
	}
	// Stale capture files from a crashed process are garbage by definition.
	if ents, err := os.ReadDir(c.tmpDir); err == nil {
		for _, e := range ents {
			_ = os.Remove(filepath.Join(c.tmpDir, e.Name()))
		}
	}
	// Re-adopt modules built by earlier processes so verdicts and the byte
	// accounting survive restarts.
	if ents, err := os.ReadDir(dir); err == nil {
		for _, e := range ents {
			name := e.Name()
			if !e.IsDir() || !strings.HasPrefix(name, "m-") {
				continue
			}
			m := &module{key: strings.TrimPrefix(name, "m-"), dir: filepath.Join(dir, name), lastUse: time.Now()}
			m.loadMeta()
			if st, err := os.Stat(filepath.Join(m.dir, "bin")); err == nil && st.Size() > 0 {
				m.built = true
			}
			c.modules[m.key] = m
			c.moduleBytes += m.meta.Bytes
		}
	}
	c.evictModules()
	return c, nil
}

// Close kills every resident worker and releases the capture arenas (slots
// still aliased by live Recordings are unmapped when those are released).
// The on-disk module cache is left for the next process.
func (c *Capturer) Close() {
	if c == nil {
		return
	}
	c.mu.Lock()
	mods := make([]*module, 0, len(c.modules))
	for _, m := range c.modules {
		mods = append(mods, m)
	}
	c.mu.Unlock()
	for _, m := range mods {
		m.mu.Lock()
		if m.worker != nil {
			m.worker.kill()
			m.worker = nil
		}
		if m.arenas != nil {
			m.arenas.close()
			m.arenas = nil
		}
		m.mu.Unlock()
	}
}

// Stats returns a snapshot of capture counters and cache occupancy.
func (c *Capturer) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	c.mu.Lock()
	mods := len(c.modules)
	bytes := c.moduleBytes
	ev := c.evictions
	c.mu.Unlock()
	return Stats{
		Native:              c.native.Load(),
		FallbackNoToolchain: c.fallbackNoToolchain.Load(),
		FallbackBuildError:  c.fallbackBuildError.Load(),
		FallbackRunError:    c.fallbackRunError.Load(),
		FallbackMismatch:    c.fallbackMismatch.Load(),
		Modules:             mods,
		ModuleBytes:         bytes,
		Evictions:           ev,
	}
}

func (c *Capturer) moduleFor(p *ir.Program) *module {
	key := moduleKey(p, c.genOpts)
	c.mu.Lock()
	defer c.mu.Unlock()
	m := c.modules[key]
	if m == nil {
		m = &module{key: key, dir: filepath.Join(c.dir, "m-"+key)}
		c.modules[key] = m
	}
	return m
}

// Capture records one full execution trace of p, natively when a trusted
// module exists (building and verifying one on first use) and via the
// interpreter otherwise. The contract is absolute: any native-path problem
// short of a context cancellation degrades silently to the interpreter —
// callers cannot observe a difference except in the Stats counters.
//
// lp must be the loaded form of p (callers already hold it). stepLimit > 0
// bounds the run with interp.ErrStepLimit parity.
func (c *Capturer) Capture(ctx context.Context, p *ir.Program, lp *interp.Program, stepLimit int64) (*trace.Recording, error) {
	if c == nil {
		return arch.RecordTrace(ctx, lp, stepLimit)
	}
	if c.goToolErr != nil {
		c.fallbackNoToolchain.Add(1)
		return arch.RecordTrace(ctx, lp, stepLimit)
	}
	m := c.moduleFor(p)
	m.mu.Lock()
	defer m.mu.Unlock()
	m.lastUse = time.Now()
	if m.meta.Quarantined {
		c.fallbackMismatch.Add(1)
		return arch.RecordTrace(ctx, lp, stepLimit)
	}
	if err := c.ensureBuilt(ctx, m, lp); err != nil {
		if ctx.Err() != nil {
			return nil, fmt.Errorf("interp: run interrupted: %w", ctx.Err())
		}
		c.fallbackBuildError.Add(1)
		return arch.RecordTrace(ctx, lp, stepLimit)
	}
	res, reply, err := c.runNative(ctx, m, stepLimit)
	if err != nil {
		if ctx.Err() != nil {
			return nil, fmt.Errorf("interp: run interrupted: %w", ctx.Err())
		}
		c.fallbackRunError.Add(1)
		return arch.RecordTrace(ctx, lp, stepLimit)
	}

	if m.meta.Verified || c.disableVerify {
		switch reply.kind {
		case "ok":
			c.native.Add(1)
			return res.rec, nil
		case "limit":
			c.native.Add(1)
			return nil, interp.ErrStepLimit
		default:
			// Fault: the run is going to fail either way; rerun the
			// interpreter for the canonical error text. Not counted as a
			// native capture since the interpreter produced the answer.
			return arch.RecordTrace(ctx, lp, stepLimit)
		}
	}

	// First use of an unverified module: differential oracle. Run the
	// interpreter side by side and only trust (and persist) the module when
	// both paths agree bit-for-bit.
	irec, ierr := arch.RecordTrace(ctx, lp, stepLimit)
	if ctx.Err() != nil {
		// Cancellation mid-oracle proves nothing; no verdict either way.
		if res != nil {
			res.rec.Release()
		}
		return irec, ierr
	}
	switch {
	case reply.kind == "ok" && ierr == nil &&
		res.rec.Checksum() == irec.Checksum() && res.rec.Steps() == irec.Steps():
		m.meta.Verified = true
		m.saveMeta()
		irec.Release()
		c.native.Add(1)
		return res.rec, nil
	case reply.kind == "limit" && errors.Is(ierr, interp.ErrStepLimit):
		// Consistent limit outcomes carry no checksum to compare; stay
		// unverified and report the interpreter's canonical error.
		return nil, ierr
	case reply.kind == "fault" && ierr != nil && !errors.Is(ierr, interp.ErrStepLimit):
		return nil, ierr
	default:
		// Checksum or outcome-class divergence: the generated code is wrong
		// for this program. Quarantine the module so it is never consulted
		// again and serve the interpreter's result.
		m.meta.Quarantined = true
		m.saveMeta()
		if res != nil {
			res.rec.Release()
		}
		c.fallbackMismatch.Add(1)
		return irec, ierr
	}
}

// runNative performs one worker round-trip under m.mu, respawning a dead
// worker at most once. On "ok" the returned result's Recording aliases the
// shared arena; the arena slot is held until the Recording is released.
func (c *Capturer) runNative(ctx context.Context, m *module, stepLimit int64) (*captureResult, *workerReply, error) {
	var reply *workerReply
	var idx int
	for attempt := 0; ; attempt++ {
		w, err := c.ensureWorker(m)
		if err != nil {
			return nil, nil, err
		}
		idx = m.arenas.acquire()
		if idx < 0 {
			return nil, nil, errArenasBusy
		}
		reply, err = w.capture(ctx, stepLimit, idx)
		if err != nil {
			m.arenas.release(idx)
			m.worker = nil // capture killed it
			if ctx.Err() != nil || attempt > 0 {
				return nil, nil, err
			}
			continue // one respawn retry: the binary is verified-good on disk
		}
		break
	}
	if reply.kind != "ok" {
		m.arenas.release(idx)
		return nil, reply, nil
	}
	arenas := m.arenas
	data, err := arenas.view(idx)
	if err != nil {
		arenas.release(idx)
		return nil, nil, err
	}
	res, err := parseCapture(data, func() { arenas.release(idx) })
	if err != nil {
		// parseCapture released the arena on failure.
		return nil, nil, err
	}
	return res, reply, nil
}
