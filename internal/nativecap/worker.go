package nativecap

import (
	"bufio"
	"context"
	"fmt"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"sync"
)

// A worker is a resident capture subprocess: one compiled module binary kept
// alive across requests so a capture costs a pipe round-trip instead of a
// process exec. The module's shared-memory arenas are inherited at spawn as
// fds 3..3+arenaCount-1; requests and replies are single lines on
// stdin/stdout:
//
//	-> capture <stepLimit> <arenaIdx>
//	<- ok <steps> <ret> <memsum>   capture written into arena arenaIdx
//	<- limit                        step limit exceeded, arena is garbage
//	<- fault <quoted msg>           program fault (heap error, fell off end)
//	<- err <quoted msg>             worker-internal failure
//
// A worker is owned by its module and serialized by the module's mutex; any
// protocol or process error kills it, and the caller respawns at most once
// before falling back to the interpreter.
type worker struct {
	cmd      *exec.Cmd
	stdin    *bufio.Writer
	in       chan string // replies, closed when stdout drains
	done     chan error  // process exit
	killOnce sync.Once
}

type workerReply struct {
	kind   string // "ok", "limit", "fault"
	steps  int64
	ret    int64
	memsum uint64
	msg    string // fault message
}

func startWorker(bin string, arenas []*os.File) (*worker, error) {
	cmd := exec.Command(bin)
	cmd.ExtraFiles = arenas
	setProcAttr(cmd)
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return nil, err
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	w := &worker{
		cmd:   cmd,
		stdin: bufio.NewWriter(stdin),
		in:    make(chan string, 1),
		done:  make(chan error, 1),
	}
	go func() {
		sc := bufio.NewScanner(stdout)
		sc.Buffer(make([]byte, 64*1024), 64*1024)
		for sc.Scan() {
			w.in <- sc.Text()
		}
		close(w.in)
	}()
	go func() { w.done <- cmd.Wait() }()
	return w, nil
}

// capture runs one request. A context cancellation kills the worker — the
// parent-side select stands in for the interpreter's every-1024-steps ctx
// poll, so a canceled capture stops promptly instead of running to
// completion. Any transport error also kills the worker and is returned for
// the caller's respawn-or-fallback decision.
func (w *worker) capture(ctx context.Context, stepLimit int64, arenaIdx int) (*workerReply, error) {
	if _, err := fmt.Fprintf(w.stdin, "capture %d %d\n", stepLimit, arenaIdx); err != nil {
		w.kill()
		return nil, err
	}
	if err := w.stdin.Flush(); err != nil {
		w.kill()
		return nil, err
	}
	select {
	case <-ctx.Done():
		w.kill()
		return nil, ctx.Err()
	case line, ok := <-w.in:
		if !ok {
			w.kill()
			return nil, fmt.Errorf("nativecap: worker closed stdout")
		}
		reply, err := parseReply(line)
		if err != nil {
			w.kill()
		}
		return reply, err
	}
}

func parseReply(line string) (*workerReply, error) {
	parts := strings.SplitN(line, " ", 2)
	switch parts[0] {
	case "ok":
		fields := strings.Fields(line)
		if len(fields) != 4 {
			return nil, fmt.Errorf("nativecap: malformed reply %q", line)
		}
		steps, err1 := strconv.ParseInt(fields[1], 10, 64)
		ret, err2 := strconv.ParseInt(fields[2], 10, 64)
		memsum, err3 := strconv.ParseUint(fields[3], 10, 64)
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, fmt.Errorf("nativecap: malformed reply %q", line)
		}
		return &workerReply{kind: "ok", steps: steps, ret: ret, memsum: memsum}, nil
	case "limit":
		return &workerReply{kind: "limit"}, nil
	case "fault":
		msg := ""
		if len(parts) == 2 {
			if m, err := strconv.Unquote(parts[1]); err == nil {
				msg = m
			}
		}
		return &workerReply{kind: "fault", msg: msg}, nil
	case "err":
		msg := line
		if len(parts) == 2 {
			if m, err := strconv.Unquote(parts[1]); err == nil {
				msg = m
			}
		}
		return nil, fmt.Errorf("nativecap: worker error: %s", msg)
	}
	return nil, fmt.Errorf("nativecap: malformed reply %q", line)
}

// kill terminates the worker process. Safe to call more than once.
func (w *worker) kill() {
	w.killOnce.Do(func() {
		if w.cmd.Process != nil {
			_ = w.cmd.Process.Kill()
		}
		<-w.done
		// Drain the reader goroutine so it can exit.
		for range w.in {
		}
	})
}
