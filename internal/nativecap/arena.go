package nativecap

import (
	"errors"
	"os"
	"sync"
)

// Capture hand-off is shared memory, not a pipe or a file write: each module
// owns a small set of arenas — unlinked temp files (tmpfs when available)
// passed to the worker as inherited fds 3..3+arenaCount-1. The child maps
// them MAP_SHARED and its generated code stores every event directly into
// the recorder-layout chunks; the parent maps the same pages read-only and
// aliases the columns into a trace.Recording with zero copies. Because
// arenas are reused across captures, the page faults and page zeroing are
// paid once per arena, not once per capture.
//
// An arena stays busy while a Recording aliases its pages and is returned
// by the Recording's release hook (or finalizer). When every arena is
// aliased by a live Recording — more than arenaCount recordings of the same
// program held simultaneously — the capture falls back to the interpreter
// rather than blocking.
const (
	// arenaCount arenas per module. Concurrent live recordings of one
	// program are rare (distinct step limits in flight at once), so a small
	// fixed set keeps the fd hand-off trivial.
	arenaCount = 4
	// arenaWindow is the fixed virtual-address window both sides map; the
	// backing file grows lazily underneath it, so neither side ever remaps.
	// It is the hard per-capture size bound (~1 GiB ≈ 32M events).
	arenaWindow = 1 << 30
)

// errArenasBusy reports that every arena of a module is aliased by a live
// Recording; the caller falls back to the interpreter for this capture.
var errArenasBusy = errors.New("nativecap: all capture arenas in use")

type arenaSet struct {
	mu     sync.Mutex
	arenas [arenaCount]*arena
	closed bool
}

type arena struct {
	f    *os.File
	data []byte // parent's read-only window, mapped on first view
	busy bool   // aliased by a live Recording or an in-flight capture
}

// newArenaSet creates the backing files, preferring /dev/shm so dirty arena
// pages never cost writeback I/O. The files are unlinked immediately: the
// inherited fds and the mappings keep the pages alive.
func newArenaSet(dir string) (*arenaSet, error) {
	if st, err := os.Stat("/dev/shm"); err == nil && st.IsDir() {
		dir = "/dev/shm"
	}
	s := &arenaSet{}
	for i := range s.arenas {
		f, err := os.CreateTemp(dir, "sptd-nativecap-arena-*")
		if err != nil {
			s.close()
			return nil, err
		}
		os.Remove(f.Name())
		s.arenas[i] = &arena{f: f}
	}
	return s, nil
}

// files returns the backing files in fd-index order for exec.Cmd.ExtraFiles.
func (s *arenaSet) files() []*os.File {
	out := make([]*os.File, arenaCount)
	for i, a := range s.arenas {
		out[i] = a.f
	}
	return out
}

// acquire claims a free arena slot, or -1 when live recordings hold all of
// them.
func (s *arenaSet) acquire() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, a := range s.arenas {
		if !a.busy {
			a.busy = true
			return i
		}
	}
	return -1
}

func (s *arenaSet) release(i int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	a := s.arenas[i]
	a.busy = false
	if s.closed && a.data != nil {
		unmapArena(a.data)
		a.data = nil
	}
}

// view returns the parent's window over arena i clipped to the backing
// file's current size — the child has truncated it to cover everything it
// wrote, and reads beyond EOF through the mapping would SIGBUS.
func (s *arenaSet) view(i int) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	a := s.arenas[i]
	if a.data == nil {
		m, err := mapArenaWindow(a.f, arenaWindow)
		if err != nil {
			return nil, err
		}
		a.data = m
	}
	st, err := a.f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size > arenaWindow {
		size = arenaWindow
	}
	return a.data[:size], nil
}

// close releases what can be released now: arenas not aliased by a live
// Recording are unmapped, and every backing file is closed (an mmap outlives
// its fd, so still-busy windows stay valid and are unmapped when their
// Recording is finally released).
func (s *arenaSet) close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	for _, a := range s.arenas {
		if a == nil {
			continue
		}
		if !a.busy && a.data != nil {
			unmapArena(a.data)
			a.data = nil
		}
		a.f.Close()
	}
}
