//go:build !linux

package nativecap

import "os/exec"

func setProcAttr(cmd *exec.Cmd) {}
