//go:build !unix

package nativecap

import (
	"errors"
	"os"
)

// Without mmap there is no shared-memory capture hand-off; the Capturer
// degrades to interpreter-only at construction time.
const mmapSupported = false

func mapArenaWindow(f *os.File, size int) ([]byte, error) {
	return nil, errors.New("nativecap: mmap unsupported on this platform")
}

func unmapArena(b []byte) {}
