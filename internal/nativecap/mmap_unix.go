//go:build unix

package nativecap

import (
	"os"
	"syscall"
)

// mmapSupported gates the whole native path: capture hand-off is a shared
// MAP_SHARED window over an arena file, so platforms without mmap always use
// the interpreter.
const mmapSupported = true

// mapArenaWindow maps a fixed read-only window over the arena file. The
// window may extend past EOF — only bytes below the file's current size are
// ever touched.
func mapArenaWindow(f *os.File, size int) ([]byte, error) {
	return syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ, syscall.MAP_SHARED)
}

func unmapArena(b []byte) { _ = syscall.Munmap(b) }
