package nativecap

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/artifact"
	"repro/internal/interp"
	"repro/internal/ir"
)

// A module is one compiled capture worker: the generated source, its built
// binary, and the oracle verdict, cached on disk under a content-addressed
// directory so daemon restarts reuse prior builds and prior verifications.
//
//	<dir>/m-<key>/main.go    generated worker source
//	<dir>/m-<key>/go.mod     module stanza (no dependencies)
//	<dir>/m-<key>/bin        compiled worker
//	<dir>/m-<key>/meta.json  {verified, quarantined, bytes}
//
// The key folds genVersion with the program fingerprint, so a codegen or
// format change invalidates every cached module without any migration.
type module struct {
	key string
	dir string

	mu       sync.Mutex // serializes build, capture, verdict transitions
	built    bool
	buildErr error
	meta     moduleMeta
	worker   *worker
	arenas   *arenaSet // shared-memory capture arenas, survive worker respawns
	lastUse  time.Time
}

type moduleMeta struct {
	Verified    bool  `json:"verified"`
	Quarantined bool  `json:"quarantined"`
	Bytes       int64 `json:"bytes"`
}

func moduleKey(p *ir.Program, opts genOptions) string {
	h := sha256.Sum256(fmt.Appendf(nil, "nativecap|v%d|tamper=%v|%s", genVersion, opts.tamperFrames, artifact.Fingerprint(p)))
	return hex.EncodeToString(h[:8])
}

// ensureBuilt generates, writes and compiles the module if its binary is not
// already on disk. Held under m.mu by the caller. A build failure is sticky
// for the process lifetime (the generated source is deterministic, retrying
// cannot help).
func (c *Capturer) ensureBuilt(ctx context.Context, m *module, lp *interp.Program) error {
	if m.built || m.buildErr != nil {
		return m.buildErr
	}
	bin := filepath.Join(m.dir, "bin")
	if st, err := os.Stat(bin); err == nil && st.Size() > 0 {
		// Prior build (possibly from an earlier process). Trust meta.json.
		m.loadMeta()
		m.built = true
		return nil
	}
	src, err := generate(lp, c.genOpts)
	if err != nil {
		m.buildErr = err
		return err
	}
	if c.tamperSource != nil {
		src = c.tamperSource(src)
	}
	if err := os.MkdirAll(m.dir, 0o755); err != nil {
		m.buildErr = err
		return err
	}
	if err := os.WriteFile(filepath.Join(m.dir, "main.go"), src, 0o644); err != nil {
		m.buildErr = err
		return err
	}
	if err := os.WriteFile(filepath.Join(m.dir, "go.mod"), []byte("module nativecapmod\n\ngo 1.22\n"), 0o644); err != nil {
		m.buildErr = err
		return err
	}
	bctx, cancel := context.WithTimeout(ctx, 120*time.Second)
	defer cancel()
	cmd := exec.CommandContext(bctx, c.goTool, "build", "-o", "bin", ".")
	cmd.Dir = m.dir
	cmd.Env = append(os.Environ(),
		"CGO_ENABLED=0",
		"GOFLAGS=",
		"GOWORK=off",
		"GOPROXY=off",
		"GO111MODULE=on",
	)
	if out, err := cmd.CombinedOutput(); err != nil {
		m.buildErr = fmt.Errorf("nativecap: build: %v: %s", err, firstLine(out))
		_ = os.RemoveAll(m.dir)
		return m.buildErr
	}
	m.meta = moduleMeta{Bytes: dirBytes(m.dir)}
	m.saveMeta()
	m.built = true
	c.accountModule(m.meta.Bytes)
	return nil
}

func firstLine(b []byte) []byte {
	for i, c := range b {
		if c == '\n' {
			return b[:i]
		}
	}
	return b
}

func (m *module) metaPath() string { return filepath.Join(m.dir, "meta.json") }

func (m *module) loadMeta() {
	b, err := os.ReadFile(m.metaPath())
	if err != nil {
		m.meta = moduleMeta{Bytes: dirBytes(m.dir)}
		return
	}
	_ = json.Unmarshal(b, &m.meta)
	if m.meta.Bytes == 0 {
		m.meta.Bytes = dirBytes(m.dir)
	}
}

func (m *module) saveMeta() {
	b, _ := json.Marshal(m.meta)
	_ = os.WriteFile(m.metaPath(), b, 0o644)
}

// ensureWorker spawns the resident worker if needed, enforcing the live
// worker bound by reaping the least-recently-used idle worker first. The
// module's arena set is created once and survives worker respawns — a fresh
// worker re-maps the same backing files, so recordings aliasing the arenas
// outlive the process that wrote them.
func (c *Capturer) ensureWorker(m *module) (*worker, error) {
	if m.worker != nil {
		return m.worker, nil
	}
	if m.arenas == nil {
		s, err := newArenaSet(c.tmpDir)
		if err != nil {
			return nil, err
		}
		m.arenas = s
	}
	c.reapWorkers(m)
	w, err := startWorker(filepath.Join(m.dir, "bin"), m.arenas.files())
	if err != nil {
		return nil, err
	}
	m.worker = w
	return w, nil
}

// reapWorkers kills idle workers until fewer than maxWorkers remain live
// (excluding keep, whose mutex the caller already holds). A worker whose
// module is mid-capture is skipped — the bound is best-effort, not hard.
func (c *Capturer) reapWorkers(keep *module) {
	c.mu.Lock()
	var candidates []*module
	live := 0
	for _, m := range c.modules {
		if m == keep {
			continue
		}
		candidates = append(candidates, m)
	}
	c.mu.Unlock()
	sort.Slice(candidates, func(i, j int) bool { return candidates[i].lastUse.Before(candidates[j].lastUse) })
	for _, m := range candidates {
		if !m.mu.TryLock() {
			continue
		}
		if m.worker != nil {
			live++
		}
		m.mu.Unlock()
	}
	if live < c.maxWorkers {
		return
	}
	for _, m := range candidates {
		if live < c.maxWorkers {
			return
		}
		if !m.mu.TryLock() {
			continue
		}
		if m.worker != nil {
			m.worker.kill()
			m.worker = nil
			live--
		}
		m.mu.Unlock()
	}
}

// dirBytes sums the file sizes under dir.
func dirBytes(dir string) int64 {
	var total int64
	_ = filepath.Walk(dir, func(_ string, info os.FileInfo, err error) error {
		if err == nil && info.Mode().IsRegular() {
			total += info.Size()
		}
		return nil
	})
	return total
}

// evictModules enforces the byte bound on the module cache: while over
// budget, the least-recently-used module not currently in use is killed and
// its directory removed. Quarantined modules are preferred victims only in
// the sense that their verdict is persisted — eviction never forgets a
// quarantine recorded on disk... except by removing the dir, so quarantined
// modules are skipped entirely (they are tiny once their worker is dead and
// their verdict must outlive eviction).
func (c *Capturer) evictModules() {
	c.mu.Lock()
	over := c.moduleBytes > c.maxBytes
	if !over {
		c.mu.Unlock()
		return
	}
	var candidates []*module
	for _, m := range c.modules {
		candidates = append(candidates, m)
	}
	c.mu.Unlock()
	sort.Slice(candidates, func(i, j int) bool { return candidates[i].lastUse.Before(candidates[j].lastUse) })
	for _, m := range candidates {
		c.mu.Lock()
		if c.moduleBytes <= c.maxBytes {
			c.mu.Unlock()
			return
		}
		c.mu.Unlock()
		if !m.mu.TryLock() {
			continue
		}
		if !m.built || m.meta.Quarantined {
			m.mu.Unlock()
			continue
		}
		if m.worker != nil {
			m.worker.kill()
			m.worker = nil
		}
		if m.arenas != nil {
			m.arenas.close()
			m.arenas = nil
		}
		bytes := m.meta.Bytes
		_ = os.RemoveAll(m.dir)
		m.built = false
		m.meta = moduleMeta{}
		m.mu.Unlock()
		c.mu.Lock()
		c.moduleBytes -= bytes
		delete(c.modules, m.key)
		c.evictions++
		c.mu.Unlock()
	}
}

func (c *Capturer) accountModule(bytes int64) {
	c.mu.Lock()
	c.moduleBytes += bytes
	c.mu.Unlock()
	c.evictModules()
}
