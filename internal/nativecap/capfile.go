package nativecap

import (
	"encoding/binary"
	"fmt"
	"unsafe"

	"repro/internal/trace"
)

// Capture arena layout (shared with the generated worker — gen.go emits
// these same constants into the worker source, so both sides always agree):
//
//	[0, 4096)                        header (little-endian, 64 bytes used)
//	[4096 + i*stride, ... )          chunk i columns at fixed offsets:
//	    funcs  int32[ChunkEvents]    @ 0
//	    ids    int32[ChunkEvents]    @ 4*N
//	    frames int64[ChunkEvents]    @ 8*N
//	    addrs  int64[ChunkEvents]    @ 16*N
//	    vals   int64[ChunkEvents]    @ 24*N
//	    taken  byte[ChunkEvents]     @ 32*N
//	[4096 + nchunks*stride, ...)     footer: per chunk
//	    n u32 · snapCount u32 · snapAt u32[] · snapOff u32[] ·
//	    snapDataLen u32 · snapData u64[]
//
// Columns are raw native-endian memory (producer and consumer are the same
// host); header and footer are little-endian. The parent aliases the column
// regions of the shared arena directly into trace.ExternalChunks — capture
// hand-off is zero-copy.
const (
	capMagic       uint64 = 0x314345525041434E // "NCAPREC1" little-endian
	capVersion            = 1
	capHeaderBytes        = 4096
	capChunkStride        = trace.ChunkEvents * 33 // 4+4+8+8+8+1 bytes per event

	offIDs    = trace.ChunkEvents * 4
	offFrames = trace.ChunkEvents * 8
	offAddrs  = trace.ChunkEvents * 16
	offVals   = trace.ChunkEvents * 24
	offTaken  = trace.ChunkEvents * 32
)

// captureResult is a decoded capture: a complete Recording whose columns
// alias the shared arena, plus the worker's reported return value and store
// checksum for the differential oracle.
type captureResult struct {
	rec    *trace.Recording
	ret    int64
	memsum uint64
}

// parseCapture assembles the worker's arena contents into a Recording. On
// success the Recording owns the arena slot (returned via release when the
// Recording is released or finalized). Any structural problem invokes
// release and returns an error — the caller treats it like a worker failure
// and falls back to the interpreter.
func parseCapture(data []byte, release func()) (*captureResult, error) {
	size := int64(len(data))
	fail := func(format string, args ...any) (*captureResult, error) {
		release()
		return nil, fmt.Errorf("nativecap: "+format, args...)
	}
	if size < capHeaderBytes {
		return fail("capture arena truncated (%d bytes)", size)
	}
	hdr := data[:64]
	if binary.LittleEndian.Uint64(hdr[0:]) != capMagic {
		return fail("bad capture magic")
	}
	if v := binary.LittleEndian.Uint32(hdr[8:]); v != capVersion {
		return fail("capture version %d (want %d)", v, capVersion)
	}
	if ce := binary.LittleEndian.Uint32(hdr[12:]); ce != trace.ChunkEvents {
		return fail("chunk size %d (want %d)", ce, trace.ChunkEvents)
	}
	nchunks := int64(binary.LittleEndian.Uint32(hdr[16:]))
	nEvents := int64(binary.LittleEndian.Uint64(hdr[24:]))
	steps := int64(binary.LittleEndian.Uint64(hdr[32:]))
	ret := int64(binary.LittleEndian.Uint64(hdr[40:]))
	memsum := binary.LittleEndian.Uint64(hdr[48:])
	footerLen := int64(binary.LittleEndian.Uint64(hdr[56:]))

	footerOff := capHeaderBytes + nchunks*capChunkStride
	if nchunks < 0 || footerLen < 0 || footerOff+footerLen > size {
		return fail("capture arena inconsistent (%d chunks, %d footer bytes, %d arena bytes)", nchunks, footerLen, size)
	}

	footer := data[footerOff : footerOff+footerLen]
	chunks := make([]trace.ExternalChunk, 0, nchunks)
	var total int64
	for ci := int64(0); ci < nchunks; ci++ {
		if len(footer) < 8 {
			return fail("footer truncated at chunk %d", ci)
		}
		n := int64(binary.LittleEndian.Uint32(footer[0:]))
		snapCount := int64(binary.LittleEndian.Uint32(footer[4:]))
		footer = footer[8:]
		need := snapCount*8 + 4
		if int64(len(footer)) < need {
			return fail("footer truncated at chunk %d snapshots", ci)
		}
		snapAt := make([]int32, snapCount)
		snapOff := make([]int32, snapCount)
		for i := range snapAt {
			snapAt[i] = int32(binary.LittleEndian.Uint32(footer[i*4:]))
		}
		footer = footer[snapCount*4:]
		for i := range snapOff {
			snapOff[i] = int32(binary.LittleEndian.Uint32(footer[i*4:]))
		}
		footer = footer[snapCount*4:]
		snapDataLen := int64(binary.LittleEndian.Uint32(footer[0:]))
		footer = footer[4:]
		if int64(len(footer)) < snapDataLen*8 {
			return fail("footer truncated at chunk %d snapshot data", ci)
		}
		snapData := make([]int64, snapDataLen)
		for i := range snapData {
			snapData[i] = int64(binary.LittleEndian.Uint64(footer[i*8:]))
		}
		footer = footer[snapDataLen*8:]

		if n <= 0 || n > trace.ChunkEvents {
			return fail("chunk %d has %d events", ci, n)
		}
		base := capHeaderBytes + ci*capChunkStride
		chunks = append(chunks, trace.ExternalChunk{
			N:        int(n),
			Funcs:    aliasSlice[int32](data, base, trace.ChunkEvents),
			IDs:      aliasSlice[int32](data, base+offIDs, trace.ChunkEvents),
			Frames:   aliasSlice[int64](data, base+offFrames, trace.ChunkEvents),
			Addrs:    aliasSlice[int64](data, base+offAddrs, trace.ChunkEvents),
			Vals:     aliasSlice[int64](data, base+offVals, trace.ChunkEvents),
			Taken:    aliasSlice[bool](data, base+offTaken, trace.ChunkEvents),
			SnapAt:   snapAt,
			SnapOff:  snapOff,
			SnapData: snapData,
		})
		total += n
	}
	if total != nEvents {
		return fail("header claims %d events, footer sums to %d", nEvents, total)
	}
	rec, err := trace.AssembleExternal(steps, chunks, release)
	if err != nil {
		// AssembleExternal already invoked release on failure.
		return nil, err
	}
	return &captureResult{rec: rec, ret: ret, memsum: memsum}, nil
}

// aliasSlice reinterprets a region of the shared arena as a typed column.
// The taken column is produced as bytes holding strictly 0 or 1, so the
// bool aliasing is well-defined.
func aliasSlice[T int32 | int64 | bool](data []byte, off int64, n int) []T {
	return unsafe.Slice((*T)(unsafe.Pointer(&data[off])), n)
}
