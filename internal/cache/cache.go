// Package cache simulates the Itanium2-like cache hierarchy of the paper's
// default machine configuration (Table 1): split 16KB 4-way L1 I/D caches
// with 64-byte blocks and 1-cycle latency, a 256KB 8-way L2 (5 cycles), a
// 3MB 12-way L3 with 128-byte blocks (12 cycles), and 150-cycle memory.
// Caches are shared by the two SPT cores and kept trivially coherent (the
// simulator is trace-driven, so data values never live in the cache model —
// only presence and recency, tagged with access timestamps to maintain
// temporal ordering as described in Section 5.1).
package cache

// LevelConfig describes one cache level.
type LevelConfig struct {
	SizeBytes  int64
	Ways       int
	BlockBytes int64
	Latency    int
}

// Config is a full hierarchy configuration.
type Config struct {
	L1I, L1D, L2, L3 LevelConfig
	MemLatency       int
}

// DefaultConfig returns the paper's Table 1 hierarchy.
func DefaultConfig() Config {
	return Config{
		L1I:        LevelConfig{SizeBytes: 16 << 10, Ways: 4, BlockBytes: 64, Latency: 1},
		L1D:        LevelConfig{SizeBytes: 16 << 10, Ways: 4, BlockBytes: 64, Latency: 1},
		L2:         LevelConfig{SizeBytes: 256 << 10, Ways: 8, BlockBytes: 64, Latency: 5},
		L3:         LevelConfig{SizeBytes: 3 << 20, Ways: 12, BlockBytes: 128, Latency: 12},
		MemLatency: 150,
	}
}

// LevelStats counts accesses per level.
type LevelStats struct {
	Hits, Misses int64
}

// level is one set-associative LRU cache level.
type level struct {
	cfg      LevelConfig
	sets     int64
	shift    uint // log2(block bytes)
	tags     []int64
	last     []int64 // LRU timestamps
	valid    []bool
	Stats    LevelStats
	accesses int64

	// Hot-line memo: the way index of the most recently touched block.
	// Consecutive accesses overwhelmingly land in the same block (sequential
	// instruction fetch especially), and the memo turns those into a single
	// compare instead of a set probe. Outcome-neutral: a memo hit is by
	// construction an LRU hit on the same way.
	lastBlock int64
	lastIdx   int64 // -1 when invalid
}

func newLevel(cfg LevelConfig) *level {
	blocks := cfg.SizeBytes / cfg.BlockBytes
	sets := blocks / int64(cfg.Ways)
	if sets < 1 {
		sets = 1
	}
	shift := uint(0)
	for b := cfg.BlockBytes; b > 1; b >>= 1 {
		shift++
	}
	n := sets * int64(cfg.Ways)
	return &level{
		cfg:     cfg,
		sets:    sets,
		shift:   shift,
		tags:    make([]int64, n),
		last:    make([]int64, n),
		valid:   make([]bool, n),
		lastIdx: -1,
	}
}

// access probes the level at byte address addr; returns true on hit. On
// miss the block is installed with LRU replacement.
func (l *level) access(addr int64, now int64) bool {
	block := addr >> l.shift
	if block == l.lastBlock && l.lastIdx >= 0 {
		// The memo always points at the most recently accessed line, whose
		// tag can only change through an install — which retargets the memo
		// — so a block match is a hit.
		l.accesses++
		l.last[l.lastIdx] = now
		l.Stats.Hits++
		return true
	}
	set := block % l.sets
	if set < 0 {
		set += l.sets
	}
	base := set * int64(l.cfg.Ways)
	l.accesses++
	victim := base
	for w := int64(0); w < int64(l.cfg.Ways); w++ {
		i := base + w
		if l.valid[i] && l.tags[i] == block {
			l.last[i] = now
			l.Stats.Hits++
			l.lastBlock, l.lastIdx = block, i
			return true
		}
		if !l.valid[victim] {
			continue
		}
		if !l.valid[i] || l.last[i] < l.last[victim] {
			victim = i
		}
	}
	l.Stats.Misses++
	l.tags[victim] = block
	l.valid[victim] = true
	l.last[victim] = now
	l.lastBlock, l.lastIdx = block, victim
	return false
}

// Hierarchy is a full shared cache hierarchy.
type Hierarchy struct {
	cfg Config
	l1i *level
	l1d *level
	l2  *level
	l3  *level
}

// New builds a hierarchy from the configuration.
func New(cfg Config) *Hierarchy {
	return &Hierarchy{
		cfg: cfg,
		l1i: newLevel(cfg.L1I),
		l1d: newLevel(cfg.L1D),
		l2:  newLevel(cfg.L2),
		l3:  newLevel(cfg.L3),
	}
}

// WordBytes is the size of one IR memory word in bytes.
const WordBytes = 8

// Data performs a data access for the given word address at time now and
// returns the access latency in cycles.
func (h *Hierarchy) Data(wordAddr int64, now int64) int {
	return h.walk(h.l1d, wordAddr*WordBytes, now)
}

// Instr performs an instruction fetch for the given synthetic PC byte
// address and returns the access latency in cycles.
func (h *Hierarchy) Instr(pc int64, now int64) int {
	return h.walk(h.l1i, pc, now)
}

func (h *Hierarchy) walk(l1 *level, addr int64, now int64) int {
	lat := l1.cfg.Latency
	if l1.access(addr, now) {
		return lat
	}
	lat += h.l2.cfg.Latency
	if h.l2.access(addr, now) {
		return lat
	}
	lat += h.l3.cfg.Latency
	if h.l3.access(addr, now) {
		return lat
	}
	return lat + h.cfg.MemLatency
}

// Stats bundles the per-level statistics.
type Stats struct {
	L1I, L1D, L2, L3 LevelStats
}

// Stats returns a snapshot of all level statistics.
func (h *Hierarchy) Stats() Stats {
	return Stats{L1I: h.l1i.Stats, L1D: h.l1d.Stats, L2: h.l2.Stats, L3: h.l3.Stats}
}
