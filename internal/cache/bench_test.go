package cache

import "testing"

func BenchmarkDataAccessHit(b *testing.B) {
	h := New(DefaultConfig())
	h.Data(100, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Data(100, int64(i))
	}
}

func BenchmarkDataAccessStream(b *testing.B) {
	h := New(DefaultConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Data(int64(i)*8, int64(i)) // one access per line, streaming
	}
}
