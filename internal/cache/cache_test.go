package cache

import (
	"testing"
	"testing/quick"
)

func TestColdMissThenHit(t *testing.T) {
	h := New(DefaultConfig())
	lat1 := h.Data(100, 0)
	want := 1 + 5 + 12 + 150
	if lat1 != want {
		t.Errorf("cold access latency = %d, want %d", lat1, want)
	}
	lat2 := h.Data(100, 1)
	if lat2 != 1 {
		t.Errorf("warm access latency = %d, want 1 (L1 hit)", lat2)
	}
	// Same block, different word: still a hit (64B block = 8 words).
	lat3 := h.Data(101, 2)
	if lat3 != 1 {
		t.Errorf("same-block access latency = %d, want 1", lat3)
	}
	s := h.Stats()
	if s.L1D.Hits != 2 || s.L1D.Misses != 1 {
		t.Errorf("L1D stats = %+v", s.L1D)
	}
}

func TestL2HitAfterL1Eviction(t *testing.T) {
	cfg := DefaultConfig()
	h := New(cfg)
	// L1D: 16KB/64B = 256 blocks, 4-way, 64 sets. Fill one set with 5
	// conflicting blocks (stride = 64 sets * 64B = 4096B = 512 words).
	const strideWords = 4096 / WordBytes
	now := int64(0)
	for i := 0; i < 5; i++ {
		h.Data(int64(i)*strideWords, now)
		now++
	}
	// Block 0 was LRU-evicted from L1 but still lives in L2.
	lat := h.Data(0, now)
	if lat != 1+5 {
		t.Errorf("latency = %d, want %d (L2 hit)", lat, 1+5)
	}
}

func TestLRUWithinSet(t *testing.T) {
	h := New(DefaultConfig())
	const strideWords = 4096 / WordBytes
	now := int64(0)
	// Fill a set with blocks 0..3, touch 0 to refresh it, then insert 4.
	for i := 0; i < 4; i++ {
		h.Data(int64(i)*strideWords, now)
		now++
	}
	h.Data(0, now) // refresh block 0
	now++
	h.Data(4*strideWords, now) // evicts block 1 (LRU), not block 0
	now++
	if lat := h.Data(0, now); lat != 1 {
		t.Errorf("refreshed block evicted: latency = %d", lat)
	}
	now++
	if lat := h.Data(strideWords, now); lat == 1 {
		t.Error("LRU block not evicted")
	}
}

func TestInstrAndDataSeparate(t *testing.T) {
	h := New(DefaultConfig())
	h.Data(100, 0)
	// An instruction fetch of the overlapping byte address must miss L1I
	// (separate caches) but hit L2 (shared).
	lat := h.Instr(100*WordBytes, 1)
	if lat != 1+5 {
		t.Errorf("instr fetch latency = %d, want 6 (L1I miss, L2 hit)", lat)
	}
}

func TestAccessLatencyBounds(t *testing.T) {
	cfg := DefaultConfig()
	h := New(cfg)
	max := cfg.L1D.Latency + cfg.L2.Latency + cfg.L3.Latency + cfg.MemLatency
	f := func(addr int64, step uint8) bool {
		lat := h.Data(addr%(1<<30), int64(step))
		return lat >= cfg.L1D.Latency && lat <= max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestNegativeAddresses(t *testing.T) {
	h := New(DefaultConfig())
	h.Data(-12345, 0)
	if lat := h.Data(-12345, 1); lat != 1 {
		t.Errorf("negative address re-access latency = %d, want 1", lat)
	}
}
