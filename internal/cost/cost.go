// Package cost implements the paper's misspeculation cost model (Section
// 4.1): a cost graph built from the annotated control-flow graph (reach
// probabilities) and annotated data-dependence graph (dependence
// probabilities), evaluated by propagating re-execution probabilities in
// topological order and summing P(c)·Cost(c) over all nodes (Equation 1).
// It also provides the pre-fork size function and the analytic speedup
// estimate the two-pass compiler uses for loop selection.
package cost

import (
	"math"
	"sort"

	"repro/internal/ddg"
	"repro/internal/ir"
	"repro/internal/profiler"
)

// Params tunes the cost model. Zero value is not useful; use DefaultParams.
type Params struct {
	// ValueBasedRegCheck selects the register dependence checker the target
	// machine uses (Table 1 default: value-based). Update-based checking
	// makes every written live-in register a violation.
	ValueBasedRegCheck bool
	// BranchDivergenceFactor is the conditional probability that a
	// misspeculated branch actually changes direction and wastes the rest
	// of the speculative iteration.
	BranchDivergenceFactor float64
	// ForkOverhead is the register-file copy cost of spt_fork (cycles).
	ForkOverhead float64
	// FastCommitOverhead is the cost of committing a clean speculative
	// thread (cycles).
	FastCommitOverhead float64
	// ReplayWidth is the fetch/issue width while replaying the speculation
	// result buffer (Table 1: 12).
	ReplayWidth float64
	// MinSVPConfidence is the minimum profiled stride probability for
	// software value prediction to be applied.
	MinSVPConfidence float64
	// SVPPreCost and SVPPostCost are the cycles the predictor adds to the
	// pre-fork region and the check/recovery adds to the post-fork region.
	SVPPreCost, SVPPostCost float64
}

// DefaultParams mirrors the paper's default machine configuration.
func DefaultParams() Params {
	return Params{
		ValueBasedRegCheck:     true,
		BranchDivergenceFactor: 0.3,
		ForkOverhead:           1,
		FastCommitOverhead:     5,
		ReplayWidth:            12,
		MinSVPConfidence:       0.75,
		SVPPreCost:             2,
		SVPPostCost:            3,
	}
}

// Candidate is one register violation candidate: a loop-carried register
// together with all its in-body definitions. Hoisting is all-or-nothing per
// register (the transformed loop binds the register from its temp at the
// start-point only when every carried definition was moved pre-fork).
type Candidate struct {
	Reg   ir.Reg
	Defs  []int      // carried defs of Reg, iteration order
	Slice *ddg.Slice // union hoist slice of Defs; nil or !OK if not hoistable

	// Profiled probabilities.
	ChangeProb float64 // value-based violation probability
	WriteProb  float64 // update-based violation probability

	// Software value prediction option.
	SVPStride     int64
	SVPConfidence float64 // fraction of iterations the stride predicts
	SVPOK         bool
}

// HoistOK reports whether the candidate's whole def set can move pre-fork.
func (c *Candidate) HoistOK() bool { return c.Slice != nil && c.Slice.OK }

// Partition is a pre-fork/post-fork split decision: which register
// candidates are hoisted and which are software-value-predicted.
type Partition struct {
	Hoist map[ir.Reg]bool
	SVP   map[ir.Reg]bool
}

// NewPartition returns an empty partition (everything post-fork).
func NewPartition() Partition {
	return Partition{Hoist: map[ir.Reg]bool{}, SVP: map[ir.Reg]bool{}}
}

// Clone deep-copies the partition.
func (p Partition) Clone() Partition {
	n := NewPartition()
	for r := range p.Hoist {
		n.Hoist[r] = true
	}
	for r := range p.SVP {
		n.SVP[r] = true
	}
	return n
}

// Model evaluates partitions for one loop.
type Model struct {
	A      *ddg.Analysis
	P      *profiler.LoopProfile
	Params Params

	Candidates []Candidate
	byReg      map[ir.Reg]*Candidate

	memSrcAt map[int]float64 // body instr id -> combined carried-mem prob
	nodeCost map[int]float64 // body instr id -> computation amount (cycles)
}

// NewModel builds the cost model for one analyzed, profiled loop.
func NewModel(a *ddg.Analysis, p *profiler.LoopProfile, params Params) *Model {
	m := &Model{A: a, P: p, Params: params,
		byReg:    map[ir.Reg]*Candidate{},
		memSrcAt: map[int]float64{},
		nodeCost: map[int]float64{},
	}
	m.buildCandidates()
	m.buildMemSources()
	m.buildNodeCosts()
	return m
}

func (m *Model) buildCandidates() {
	regs := map[ir.Reg][]int{}
	for _, d := range m.A.CarriedReg {
		// Only dependences whose use actually reads the live-in value
		// matter; CarriedReg already guarantees that.
		found := false
		for _, x := range regs[d.Reg] {
			if x == d.Def {
				found = true
				break
			}
		}
		if !found {
			regs[d.Reg] = append(regs[d.Reg], d.Def)
		}
	}
	var order []ir.Reg
	for r := range regs {
		order = append(order, r)
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	for _, r := range order {
		defs := regs[r]
		sort.Slice(defs, func(i, j int) bool { return m.A.Pos[defs[i]] < m.A.Pos[defs[j]] })
		c := Candidate{
			Reg:        r,
			Defs:       defs,
			Slice:      m.A.UnionSlices(defs),
			ChangeProb: m.P.RegChangeProb(r),
			WriteProb:  m.P.RegWriteProb(r),
		}
		headerDef := false
		for _, d := range defs {
			if m.A.FirstIterUnsafe(d) {
				headerDef = true
			}
		}
		if vs := m.P.Values[r]; vs != nil && !headerDef {
			if stride, prob, ok := vs.BestStride(); ok && prob >= m.Params.MinSVPConfidence {
				c.SVPStride, c.SVPConfidence, c.SVPOK = stride, prob, true
			}
		}
		m.Candidates = append(m.Candidates, c)
	}
	for i := range m.Candidates {
		m.byReg[m.Candidates[i].Reg] = &m.Candidates[i]
	}
}

func (m *Model) buildMemSources() {
	for k, n := range m.P.MemDep {
		load := k[1]
		if m.P.Iterations == 0 || n == 0 {
			continue
		}
		p := float64(n) / float64(m.P.Iterations)
		if p > 1 {
			p = 1
		}
		// Combine multiple store sources hitting the same load context:
		// 1 - Π(1-p).
		q := m.memSrcAt[load]
		m.memSrcAt[load] = 1 - (1-q)*(1-p)
	}
}

func (m *Model) buildNodeCosts() {
	for _, id := range m.A.Body {
		in := m.A.F.InstrByID(id)
		c := float64(in.Op.Latency())
		if in.Op == ir.Call {
			c += m.P.CallSiteCycles(id)
		}
		m.nodeCost[id] = c
	}
}

// regViolationProb returns the residual violation probability of candidate
// register r under the given partition.
func (m *Model) regViolationProb(r ir.Reg, part Partition) float64 {
	c := m.byReg[r]
	if c == nil {
		return 0
	}
	if part.Hoist[r] {
		return 0 // pre-fork dependences are guaranteed satisfied
	}
	base := c.ChangeProb
	if !m.Params.ValueBasedRegCheck {
		base = c.WriteProb
	}
	if part.SVP[r] && c.SVPOK {
		miss := 1 - c.SVPConfidence
		if miss < base {
			return miss
		}
	}
	return base
}

// MisspecCost computes Equation 1: the expected re-execution work (cycles)
// per speculative iteration under the given partition. Re-execution
// probabilities propagate along intra-iteration def-use edges in
// topological (iteration) order; a misspeculated branch additionally wastes
// the remainder of the iteration with probability BranchDivergenceFactor.
func (m *Model) MisspecCost(part Partition) float64 {
	probs := make(map[int]float64, len(m.A.Body))
	total := 0.0
	// Suffix costs feed the branch-divergence term: a diverged speculative
	// branch wastes the reach-weighted remainder of the iteration.
	suffix := make([]float64, len(m.A.Body)+1)
	for i := len(m.A.Body) - 1; i >= 0; i-- {
		id := m.A.Body[i]
		suffix[i] = suffix[i+1] + m.P.ReachProb(id)*m.nodeCost[id]
	}
	for i, id := range m.A.Body {
		in := m.A.F.InstrByID(id)
		// Source probability from residual carried register dependences.
		p0 := 0.0
		for _, r := range m.A.LiveInReads(id) {
			pv := m.regViolationProb(r, part)
			p0 = 1 - (1-p0)*(1-pv)
		}
		// Source probability from carried memory dependences.
		if pm, ok := m.memSrcAt[id]; ok {
			p0 = 1 - (1-p0)*(1-pm)
		}
		// Propagation along intra-iteration def-use edges.
		p := 1 - p0
		for _, dep := range m.A.IntraReg[id] {
			if pd := probs[dep.Def]; pd > 0 {
				p *= 1 - pd
			}
		}
		p = 1 - p
		if p > 1 {
			p = 1
		}
		probs[id] = p
		if p == 0 {
			continue
		}
		reach := m.P.ReachProb(id)
		total += p * reach * m.nodeCost[id]
		if in.Op == ir.Br {
			total += p * reach * m.Params.BranchDivergenceFactor * suffix[i+1]
		}
	}
	return total
}

// FastCommitProb estimates the probability that an iteration commits with
// no dependence violation at all.
func (m *Model) FastCommitProb(part Partition) float64 {
	p := 1.0
	for _, c := range m.Candidates {
		// Only candidates actually read as live-in matter; candidates are
		// built from carried deps, which implies a live-in read.
		p *= 1 - m.regViolationProb(c.Reg, part)
	}
	seen := map[int]bool{}
	for _, id := range m.A.Body {
		if pm, ok := m.memSrcAt[id]; ok && !seen[id] {
			seen[id] = true
			p *= (1 - pm) // approximation: treat contexts as independent
		}
	}
	if p < 0 {
		p = 0
	}
	return p
}

// PreForkSize returns the pre-fork region size in cycles (slice code +
// binds + SVP predictors) under the partition, and whether the partition is
// legal (every hoisted candidate has a valid slice, every SVP candidate a
// confident predictor).
func (m *Model) PreForkSize(part Partition) (float64, bool) {
	var hoistRegs []ir.Reg
	for r := range part.Hoist {
		hoistRegs = append(hoistRegs, r)
	}
	sort.Slice(hoistRegs, func(i, j int) bool { return hoistRegs[i] < hoistRegs[j] })
	var defs []int
	for _, r := range hoistRegs {
		c := m.byReg[r]
		if c == nil || !c.HoistOK() {
			return 0, false
		}
		defs = append(defs, c.Defs...)
	}
	size := 0.0
	if len(defs) > 0 {
		u := m.A.UnionSlices(defs)
		if u == nil {
			return 0, false
		}
		size += float64(u.Size)
	}
	size += float64(len(hoistRegs)) // one bind (mov) per hoisted register
	for r := range part.SVP {
		c := m.byReg[r]
		if c == nil || !c.SVPOK {
			return 0, false
		}
		size += m.Params.SVPPreCost
	}
	return size, true
}

// PostForkSVPCost returns the per-iteration post-fork cycles added by SVP
// check/recovery code.
func (m *Model) PostForkSVPCost(part Partition) float64 {
	return float64(len(part.SVP)) * m.Params.SVPPostCost
}

// UpperBoundSpeedup returns an optimistic speedup bound for any completion
// of a partial partition whose pre-fork size is already preNow and whose
// achievable misspeculation cost is at least lbCost. Used by the search's
// cost-bounding prune; it deliberately ignores commit overhead and trip
// damping (both only reduce speedup) and adds a small safety margin.
func (m *Model) UpperBoundSpeedup(preNow, lbCost float64) float64 {
	b := m.P.BodyCycles()
	if b <= 0 {
		return 1
	}
	perIter := math.Max(b/2, preNow+m.Params.ForkOverhead) + lbCost
	if perIter <= 0 {
		return math.Inf(1)
	}
	return 1.1 * b / perIter
}

// EstimateSpeedup returns the analytic loop speedup of the partitioned loop
// on the 2-core SPT machine versus sequential execution, along with the
// per-iteration parallel time estimate. The model: the speculative core
// overlaps the post-fork region; the per-iteration critical path is
// max(pre-fork + fork overhead, half the body) plus the expected commit
// cost (fast commit when clean, SRB walk plus re-execution otherwise).
func (m *Model) EstimateSpeedup(part Partition) (speedup, parallelIter float64) {
	b := m.P.BodyCycles()
	if b <= 0 {
		return 1, 0
	}
	pre, ok := m.PreForkSize(part)
	if !ok {
		return 0, math.Inf(1)
	}
	body := b + m.PostForkSVPCost(part)
	miss := m.MisspecCost(part)
	pFast := m.FastCommitProb(part)
	walk := float64(m.P.BodySize()) / m.Params.ReplayWidth
	commit := pFast*m.Params.FastCommitOverhead + (1-pFast)*(walk+m.Params.FastCommitOverhead) + miss
	perIter := math.Max(body/2, pre+m.Params.ForkOverhead) + commit
	// Short loops amortize badly: fork/commit overhead applies from the
	// second iteration on; weight by trip count.
	trip := m.P.TripCount()
	if trip > 0 {
		frac := (trip - 1) / trip
		if frac < 0 {
			frac = 0
		}
		perIter = frac*perIter + (1-frac)*body
	}
	if perIter <= 0 {
		return 1, perIter
	}
	// Speedup is measured against the *original* sequential body: SVP
	// check/recovery code inflates the transformed body but must not
	// inflate the reported gain.
	return b / perIter, perIter
}
