package cost

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/cfg"
	"repro/internal/ddg"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/profiler"
)

// modelFor profiles p and builds the cost model of the loop headed at label
// in the entry function.
func modelFor(t *testing.T, p *ir.Program, header string) *Model {
	t.Helper()
	lp, err := interp.Load(p)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	prof, err := profiler.Collect(lp, 0)
	if err != nil {
		t.Fatalf("Collect: %v", err)
	}
	f := p.EntryFunc()
	g, err := cfg.Build(f)
	if err != nil {
		t.Fatalf("cfg.Build: %v", err)
	}
	forest := cfg.FindLoops(g)
	eff := ddg.ComputeEffects(p)
	for _, l := range forest.Loops {
		if f.Blocks[l.Header].Label != header {
			continue
		}
		a := ddg.Analyze(p, f, g, l, eff)
		if a == nil {
			t.Fatalf("loop %s unsupported", header)
		}
		lprof := prof.Loop(profiler.LoopKey{Func: f.Name, Header: header})
		if lprof == nil {
			t.Fatalf("loop %s not profiled", header)
		}
		return NewModel(a, lprof, DefaultParams())
	}
	t.Fatalf("no loop %s", header)
	return nil
}

func buildCounterLoop(n int64) *ir.Program {
	b := ir.NewFuncBuilder("main", 0)
	i, s, c, z := b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg()
	b.Block("entry")
	b.MovI(i, n)
	b.MovI(s, 0)
	b.MovI(z, 0)
	b.Jmp("head")
	b.Block("head")
	b.ALU(ir.CmpGT, c, i, z)
	b.Br(c, "body", "exit")
	b.Block("body")
	b.ALU(ir.Add, s, s, i)
	b.AddI(i, i, -1)
	b.Jmp("head")
	b.Block("exit")
	b.Ret(s)
	return ir.NewProgramBuilder("main").AddFunc(b.Done()).Done()
}

func TestCandidatesFound(t *testing.T) {
	m := modelFor(t, buildCounterLoop(60), "head")
	if len(m.Candidates) != 2 {
		t.Fatalf("candidates = %d, want 2 (i and s)", len(m.Candidates))
	}
	for _, c := range m.Candidates {
		if !c.HoistOK() {
			t.Errorf("candidate r%d should be hoistable", c.Reg)
		}
		if c.ChangeProb < 0.9 {
			t.Errorf("candidate r%d change prob = %v, want ~1", c.Reg, c.ChangeProb)
		}
	}
	// i (r0) strides by -1: SVP applicable.
	found := false
	for _, c := range m.Candidates {
		if c.Reg == 0 && c.SVPOK && c.SVPStride == -1 {
			found = true
		}
	}
	if !found {
		t.Error("induction candidate should be SVP-able with stride -1")
	}
}

func TestMisspecCostMonotone(t *testing.T) {
	m := modelFor(t, buildCounterLoop(60), "head")
	empty := NewPartition()
	full := NewPartition()
	for _, c := range m.Candidates {
		full.Hoist[c.Reg] = true
	}
	ce, cf := m.MisspecCost(empty), m.MisspecCost(full)
	if ce <= 0 {
		t.Errorf("empty-partition cost = %v, want > 0", ce)
	}
	if cf != 0 {
		t.Errorf("full-hoist cost = %v, want 0", cf)
	}
	// Property: hoisting any additional candidate never increases cost —
	// the monotonicity the paper's cost-bounding prune relies on.
	regs := make([]ir.Reg, len(m.Candidates))
	for i, c := range m.Candidates {
		regs[i] = c.Reg
	}
	prop := func(mask, extra uint8) bool {
		p1 := NewPartition()
		for i, r := range regs {
			if mask&(1<<i) != 0 {
				p1.Hoist[r] = true
			}
		}
		p2 := p1.Clone()
		p2.Hoist[regs[int(extra)%len(regs)]] = true
		return m.MisspecCost(p2) <= m.MisspecCost(p1)+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 64}); err != nil {
		t.Error(err)
	}
}

func TestPreForkSizeMonotone(t *testing.T) {
	m := modelFor(t, buildCounterLoop(60), "head")
	regs := make([]ir.Reg, len(m.Candidates))
	for i, c := range m.Candidates {
		regs[i] = c.Reg
	}
	prop := func(mask, extra uint8) bool {
		p1 := NewPartition()
		for i, r := range regs {
			if mask&(1<<i) != 0 {
				p1.Hoist[r] = true
			}
		}
		p2 := p1.Clone()
		p2.Hoist[regs[int(extra)%len(regs)]] = true
		s1, ok1 := m.PreForkSize(p1)
		s2, ok2 := m.PreForkSize(p2)
		return ok1 && ok2 && s2 >= s1-1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 64}); err != nil {
		t.Error(err)
	}
}

func TestFastCommitProb(t *testing.T) {
	m := modelFor(t, buildCounterLoop(60), "head")
	empty := NewPartition()
	if p := m.FastCommitProb(empty); p > 0.1 {
		t.Errorf("fast-commit prob with hot carried deps = %v, want ~0", p)
	}
	full := NewPartition()
	for _, c := range m.Candidates {
		full.Hoist[c.Reg] = true
	}
	if p := m.FastCommitProb(full); p < 0.99 {
		t.Errorf("fast-commit prob with all candidates hoisted = %v, want 1", p)
	}
}

// buildPaddedLoop is a counter loop with w extra independent ALU ops per
// iteration, so the body is large enough for speculation to pay off.
func buildPaddedLoop(n int64, w int) *ir.Program {
	b := ir.NewFuncBuilder("main", 0)
	i, s, c, z := b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg()
	pads := make([]ir.Reg, w)
	for k := range pads {
		pads[k] = b.NewReg()
	}
	b.Block("entry")
	b.MovI(i, n)
	b.MovI(s, 0)
	b.MovI(z, 0)
	for k := range pads {
		b.MovI(pads[k], int64(k))
	}
	b.Jmp("head")
	b.Block("head")
	b.ALU(ir.CmpGT, c, i, z)
	b.Br(c, "body", "exit")
	b.Block("body")
	for k := range pads {
		b.MulI(pads[k], i, int64(k+3)) // iteration-local filler work
	}
	b.ALU(ir.Add, s, s, i)
	b.AddI(i, i, -1)
	b.Jmp("head")
	b.Block("exit")
	b.Ret(s)
	return ir.NewProgramBuilder("main").AddFunc(b.Done()).Done()
}

func TestEstimateSpeedupImprovesWithHoisting(t *testing.T) {
	m := modelFor(t, buildPaddedLoop(200, 40), "head")
	empty := NewPartition()
	full := NewPartition()
	for _, c := range m.Candidates {
		full.Hoist[c.Reg] = true
	}
	se, _ := m.EstimateSpeedup(empty)
	sf, _ := m.EstimateSpeedup(full)
	if sf <= se {
		t.Errorf("speedup full=%v <= empty=%v", sf, se)
	}
	if sf < 1.2 {
		t.Errorf("full-hoist speedup = %v, want substantial", sf)
	}
	ub := m.UpperBoundSpeedup(0, 0)
	if sf > ub {
		t.Errorf("estimate %v exceeds optimistic bound %v", sf, ub)
	}
}

// Figure 5 shape: carried value updated through an opaque call.
func buildSVPLoop(n int64) *ir.Program {
	bar := ir.NewFuncBuilder("bar", 1)
	v, g := bar.NewReg(), bar.NewReg()
	bar.Block("entry")
	bar.GAddr(g, "side")
	bar.Store(g, 0, bar.Param(0)) // side effect: not hoistable
	bar.AddI(v, bar.Param(0), 2)
	bar.Ret(v)

	b := ir.NewFuncBuilder("main", 0)
	x, i, c, z := b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg()
	b.Block("entry")
	b.MovI(x, 10)
	b.MovI(i, n)
	b.MovI(z, 0)
	b.Jmp("head")
	b.Block("head")
	b.ALU(ir.CmpGT, c, i, z)
	b.Br(c, "body", "exit")
	b.Block("body")
	b.Call(x, "bar", x)
	b.AddI(i, i, -1)
	b.Jmp("head")
	b.Block("exit")
	b.Ret(x)
	return ir.NewProgramBuilder("main").AddFunc(b.Done()).AddFunc(bar.Done()).
		AddGlobal("side", 1).Done()
}

func TestSVPReducesCost(t *testing.T) {
	m := modelFor(t, buildSVPLoop(80), "head")
	var xc *Candidate
	for i := range m.Candidates {
		if m.Candidates[i].Reg == 0 {
			xc = &m.Candidates[i]
		}
	}
	if xc == nil {
		t.Fatal("x is not a candidate")
	}
	if xc.HoistOK() {
		t.Error("call-carried def must not be hoistable")
	}
	if !xc.SVPOK || xc.SVPStride != 2 {
		t.Fatalf("x should be SVP-able with stride 2; got %+v", xc)
	}
	none := NewPartition()
	svp := NewPartition()
	svp.SVP[0] = true
	if c1, c2 := m.MisspecCost(none), m.MisspecCost(svp); c2 >= c1 {
		t.Errorf("SVP cost %v >= plain cost %v", c2, c1)
	}
}

func TestMemDepCostUnaffectedByPartition(t *testing.T) {
	b := ir.NewFuncBuilder("main", 0)
	i, c, z, g, v := b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg()
	b.Block("entry")
	b.MovI(i, 50)
	b.MovI(z, 0)
	b.Jmp("head")
	b.Block("head")
	b.ALU(ir.CmpGT, c, i, z)
	b.Br(c, "body", "exit")
	b.Block("body")
	b.GAddr(g, "cell")
	b.Load(v, g, 0)
	b.AddI(v, v, 1)
	b.Store(g, 0, v)
	b.AddI(i, i, -1)
	b.Jmp("head")
	b.Block("exit")
	b.Ret(v)
	p := ir.NewProgramBuilder("main").AddFunc(b.Done()).AddGlobal("cell", 1).Done()
	m := modelFor(t, p, "head")

	// Hoist only the induction variable: the memory dependence cost stays.
	part := NewPartition()
	part.Hoist[0] = true
	if cost := m.MisspecCost(part); cost <= 0 {
		t.Errorf("carried memory dependence cost = %v, want > 0", cost)
	}
	if pf := m.FastCommitProb(part); pf > 0.1 {
		t.Errorf("fast-commit prob = %v, want ~0 with hot mem dep", pf)
	}
}

func TestUpdateBasedVsValueBased(t *testing.T) {
	// A register rewritten every iteration with the same value: value-based
	// checking sees no dependence, update-based does.
	b := ir.NewFuncBuilder("main", 0)
	i, w, c, z := b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg()
	b.Block("entry")
	b.MovI(i, 40)
	b.MovI(z, 0)
	b.MovI(w, 5)
	b.Jmp("head")
	b.Block("head")
	b.ALU(ir.CmpGT, c, i, z)
	b.Br(c, "body", "exit")
	b.Block("body")
	b.ALU(ir.Add, c, w, z) // read w before any def: carried use
	b.MovI(w, 5)           // rewrite the same value every iteration
	b.AddI(i, i, -1)
	b.Jmp("head")
	b.Block("exit")
	b.Ret(w)
	p := ir.NewProgramBuilder("main").AddFunc(b.Done()).Done()

	mv := modelFor(t, p, "head")
	var wc *Candidate
	for i := range mv.Candidates {
		if mv.Candidates[i].Reg == 1 {
			wc = &mv.Candidates[i]
		}
	}
	if wc == nil {
		t.Fatal("w not a candidate")
	}
	if wc.ChangeProb != 0 {
		t.Errorf("value-based prob = %v, want 0", wc.ChangeProb)
	}
	if wc.WriteProb < 0.9 {
		t.Errorf("update-based prob = %v, want ~1", wc.WriteProb)
	}
}

func TestSpeedupSaneValues(t *testing.T) {
	m := modelFor(t, buildCounterLoop(100), "head")
	for mask := 0; mask < 4; mask++ {
		part := NewPartition()
		for i, c := range m.Candidates {
			if mask&(1<<i) != 0 {
				part.Hoist[c.Reg] = true
			}
		}
		sp, per := m.EstimateSpeedup(part)
		if math.IsNaN(sp) || sp < 0 || sp > 2.5 {
			t.Errorf("mask %d: speedup %v out of sane range", mask, sp)
		}
		if math.IsNaN(per) || per < 0 {
			t.Errorf("mask %d: perIter %v invalid", mask, per)
		}
	}
}

func TestUpperBoundDominatesEstimates(t *testing.T) {
	// The search's optimistic bound must never fall below the achievable
	// estimate of any completion — otherwise branch-and-bound could prune
	// the optimum. Checked over all partitions of the candidate set.
	m := modelFor(t, buildPaddedLoop(150, 20), "head")
	n := len(m.Candidates)
	if n > 6 {
		n = 6
	}
	for mask := 0; mask < 1<<n; mask++ {
		part := NewPartition()
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				part.Hoist[m.Candidates[i].Reg] = true
			}
		}
		pre, ok := m.PreForkSize(part)
		if !ok {
			continue
		}
		est, _ := m.EstimateSpeedup(part)
		// Bound computed as the search would at the root (no hoists yet,
		// cost lower bound = this partition's cost).
		ub := m.UpperBoundSpeedup(0, 0)
		if est > ub {
			t.Fatalf("mask %b: estimate %.3f exceeds root bound %.3f (pre %.1f)", mask, est, ub, pre)
		}
	}
}
