package trace

import (
	"context"
	"reflect"
	"strings"
	"testing"
)

// sumHandler folds the stream into a checksum plus a count, copying nothing:
// the natural shape of a broadcast consumer.
type sumHandler struct {
	sum    int64
	count  int64
	quitAt int64 // Quit reports true once count >= quitAt (0: never)
}

func (s *sumHandler) Event(ev *Event) {
	s.count++
	s.sum = s.sum*31 + ev.Val + int64(ev.ID) + int64(len(ev.Snapshot))
	if ev.Taken {
		s.sum ^= ev.Addr
	}
}

func (s *sumHandler) Quit() bool { return s.quitAt > 0 && s.count >= s.quitAt }

// TestBroadcastMatchesReplay is the broadcast correctness contract: every
// handler of a MultiReplayer pass observes exactly the event prefix it would
// have seen from its own single-consumer Replayer, limits included.
func TestBroadcastMatchesReplay(t *testing.T) {
	rec := record(synthEvents(2*chunkEvents+777, 43))
	limits := []int64{0, 1, broadcastBlock, broadcastBlock + 1, chunkEvents + 5, rec.Len() + 100}
	want := make([]sumHandler, len(limits))
	for i, lim := range limits {
		var rp Replayer
		if err := rp.Replay(context.Background(), rec, &want[i], lim); err != nil {
			t.Fatalf("Replay(limit=%d): %v", lim, err)
		}
	}
	got := make([]sumHandler, len(limits))
	hs := make([]Handler, len(limits))
	for i := range got {
		hs[i] = &got[i]
	}
	var mr MultiReplayer
	if err := mr.Replay(context.Background(), rec, hs, limits); err != nil {
		t.Fatalf("broadcast Replay: %v", err)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("limit %d: broadcast %+v, single replay %+v", limits[i], got[i], want[i])
		}
	}
}

// TestBroadcastSnapshotsMatch drives one handler that copies everything and
// diffs the full event streams, so snapshot side-table decoding is compared
// byte for byte, not just checksummed.
func TestBroadcastSnapshotsMatch(t *testing.T) {
	rec := record(synthEvents(chunkEvents+321, 7))
	want := collect(t, rec)
	var got []Event
	copying := HandlerFunc(func(ev *Event) {
		cp := *ev
		if ev.Snapshot != nil {
			cp.Snapshot = append([]int64(nil), ev.Snapshot...)
		}
		got = append(got, cp)
	})
	var other sumHandler
	var mr MultiReplayer
	if err := mr.Replay(context.Background(), rec, []Handler{copying, &other}, nil); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("broadcast stream diverges from single replay")
	}
	if other.count != rec.Len() {
		t.Fatalf("sibling saw %d events; want %d", other.count, rec.Len())
	}
}

func TestBroadcastLimitsMismatch(t *testing.T) {
	rec := record(synthEvents(100, 0))
	var h sumHandler
	var mr MultiReplayer
	err := mr.Replay(context.Background(), rec, []Handler{&h, &h}, []int64{1})
	if err == nil || !strings.Contains(err.Error(), "limits mismatch") {
		t.Fatalf("err = %v; want limits mismatch", err)
	}
	if h.count != 0 {
		t.Fatalf("handler fed %d events before validation; want 0", h.count)
	}
}

func TestBroadcastNilAndEmpty(t *testing.T) {
	var mr MultiReplayer
	if err := mr.Replay(context.Background(), nil, []Handler{HandlerFunc(func(*Event) {})}, nil); err != nil {
		t.Fatalf("nil recording: %v", err)
	}
	rec := record(synthEvents(50, 0))
	if err := mr.Replay(context.Background(), rec, nil, nil); err != nil {
		t.Fatalf("no handlers: %v", err)
	}
	// nil handler slots and zero limits are skipped, not dereferenced.
	var h sumHandler
	if err := mr.Replay(context.Background(), rec, []Handler{nil, &h}, []int64{10, 0}); err != nil {
		t.Fatal(err)
	}
	if h.count != rec.Len() {
		t.Fatalf("live handler saw %d events; want %d", h.count, rec.Len())
	}
}

// TestBroadcastQuitSheds checks the cooperative-shedding contract: a handler
// whose Quit turns true stops receiving on the next block boundary while its
// siblings run to completion, and a pass whose handlers all quit ends early.
func TestBroadcastQuitSheds(t *testing.T) {
	rec := record(synthEvents(3*broadcastBlock+100, 0))
	quitter := &sumHandler{quitAt: 10}
	full := &sumHandler{}
	var mr MultiReplayer
	if err := mr.Replay(context.Background(), rec, []Handler{quitter, full}, nil); err != nil {
		t.Fatal(err)
	}
	// The quitter is polled between blocks: it consumes the rest of its
	// current block after quitting, and nothing beyond it.
	if quitter.count != broadcastBlock {
		t.Errorf("quit handler saw %d events; want exactly one block (%d)", quitter.count, broadcastBlock)
	}
	if full.count != rec.Len() {
		t.Errorf("sibling saw %d events; want %d", full.count, rec.Len())
	}

	solo := &sumHandler{quitAt: 1}
	if err := mr.Replay(context.Background(), rec, []Handler{solo}, nil); err != nil {
		t.Fatal(err)
	}
	if solo.count != broadcastBlock {
		t.Errorf("solo quitter saw %d events; want the pass to end after one block", solo.count)
	}
}

func TestBroadcastCtxCancel(t *testing.T) {
	rec := record(synthEvents(4*broadcastBlock, 0))
	ctx, cancel := context.WithCancel(context.Background())
	h := &sumHandler{}
	stop := HandlerFunc(func(ev *Event) {
		h.Event(ev)
		if h.count == 1 {
			cancel()
		}
	})
	var mr MultiReplayer
	err := mr.Replay(ctx, rec, []Handler{stop}, nil)
	if err == nil || !strings.Contains(err.Error(), "interrupted") {
		t.Fatalf("err = %v; want broadcast interrupted", err)
	}
	if h.count != broadcastBlock {
		t.Fatalf("handler saw %d events after cancel; want one block (%d)", h.count, broadcastBlock)
	}
}

// TestBroadcastSteadyStateAllocs mirrors TestReplaySteadyStateAllocs for the
// broadcast path: once a MultiReplayer has warmed its block and sink scratch,
// fanning a recording out to several handlers allocates nothing — the decode
// cost is O(block + handlers) scratch, never O(events).
func TestBroadcastSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is perturbed by the race detector")
	}
	rec := record(synthEvents(chunkEvents+999, 61))
	var sink int64
	hs := []Handler{
		HandlerFunc(func(ev *Event) { sink += ev.Val }),
		HandlerFunc(func(ev *Event) { sink ^= int64(ev.ID) }),
		HandlerFunc(func(ev *Event) { sink += int64(len(ev.Snapshot)) }),
	}
	limits := []int64{0, rec.Len() / 2, rec.Len() - 3}
	var mr MultiReplayer
	ctx := context.Background()
	if err := mr.Replay(ctx, rec, hs, limits); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(5, func() {
		if err := mr.Replay(ctx, rec, hs, limits); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Fatalf("steady-state broadcast allocates %.1f times per pass; want 0", allocs)
	}
	_ = sink
}
