package trace

import (
	"context"
	"testing"
)

// synthStream produces a deterministic event stream long enough to span
// multiple chunks, with periodic snapshot (fork-like) events, and feeds it
// to emit.
func synthStream(n int, emit func(ev *Event)) {
	var ev Event
	for i := 0; i < n; i++ {
		ev = Event{
			Func:  int32(i % 7),
			ID:    int32(i % 31),
			Frame: int64(i / 100),
			Addr:  int64(i * 3),
			Val:   int64(i)*0x9E37 ^ 42,
			Taken: i%5 == 0,
		}
		if i%1000 == 17 {
			ev.Snapshot = []int64{int64(i), int64(i) * 2, -int64(i)}
		}
		emit(&ev)
	}
}

// externalChunks lays the same stream out in recorder chunking, the way the
// native capture worker does.
func externalChunks(n int) []ExternalChunk {
	var chunks []ExternalChunk
	var cur ExternalChunk
	flush := func() {
		chunks = append(chunks, cur)
		cur = ExternalChunk{}
	}
	synthStream(n, func(ev *Event) {
		i := cur.N
		cur.Funcs = append(cur.Funcs, ev.Func)
		cur.IDs = append(cur.IDs, ev.ID)
		cur.Frames = append(cur.Frames, ev.Frame)
		cur.Addrs = append(cur.Addrs, ev.Addr)
		cur.Vals = append(cur.Vals, ev.Val)
		cur.Taken = append(cur.Taken, ev.Taken)
		if ev.Snapshot != nil {
			cur.SnapAt = append(cur.SnapAt, int32(i))
			cur.SnapOff = append(cur.SnapOff, int32(len(cur.SnapData)))
			cur.SnapData = append(cur.SnapData, ev.Snapshot...)
		}
		cur.N++
		if cur.N == ChunkEvents {
			flush()
		}
	})
	if cur.N > 0 {
		flush()
	}
	return chunks
}

// TestAssembleExternalMatchesRecorder is the core contract: a recording
// assembled from external columns is indistinguishable from one built by
// the Recorder from the same stream — same checksum, same length, same
// replayed events.
func TestAssembleExternalMatchesRecorder(t *testing.T) {
	n := ChunkEvents + 1500
	rec := NewRecorder(nil)
	synthStream(n, rec.Event)
	want := rec.Finalize(int64(n))
	defer want.Release()

	released := 0
	got, err := AssembleExternal(int64(n), externalChunks(n), func() { released++ })
	if err != nil {
		t.Fatalf("AssembleExternal: %v", err)
	}
	if got.Len() != want.Len() || got.Steps() != want.Steps() {
		t.Fatalf("shape: external %d/%d, recorder %d/%d", got.Len(), got.Steps(), want.Len(), want.Steps())
	}
	if got.Checksum() != want.Checksum() {
		t.Fatalf("checksum: external %#x, recorder %#x", got.Checksum(), want.Checksum())
	}

	// Replay both and require identical event sequences, snapshots included.
	type cols struct {
		fn, id      int32
		frame, a, v int64
		taken       bool
	}
	type flat struct {
		ev   cols
		snap []int64
	}
	collect := func(r *Recording) []flat {
		var out []flat
		if err := r.Replay(context.Background(), HandlerFunc(func(ev *Event) {
			out = append(out, flat{
				ev:   cols{fn: ev.Func, id: ev.ID, frame: ev.Frame, a: ev.Addr, v: ev.Val, taken: ev.Taken},
				snap: append([]int64(nil), ev.Snapshot...),
			})
		})); err != nil {
			t.Fatalf("replay: %v", err)
		}
		return out
	}
	ge, we := collect(got), collect(want)
	if len(ge) != len(we) {
		t.Fatalf("replay lengths: %d vs %d", len(ge), len(we))
	}
	for i := range ge {
		if ge[i].ev != we[i].ev {
			t.Fatalf("event %d: external %+v, recorder %+v", i, ge[i].ev, we[i].ev)
		}
		if len(ge[i].snap) != len(we[i].snap) {
			t.Fatalf("event %d snapshot sizes differ", i)
		}
		for j := range ge[i].snap {
			if ge[i].snap[j] != we[i].snap[j] {
				t.Fatalf("event %d snapshot word %d differs", i, j)
			}
		}
	}

	if released != 0 {
		t.Fatalf("release hook ran %d times before Release", released)
	}
	got.Release()
	if released != 1 {
		t.Fatalf("release hook ran %d times after Release, want 1", released)
	}
	got.Release() // double release must not re-run the hook
	if released != 1 {
		t.Fatalf("release hook ran %d times after double Release", released)
	}
}

// TestAssembleExternalValidation feeds each class of malformed input and
// requires rejection with the release hook invoked exactly once (the caller
// hands over ownership on call, error or not).
func TestAssembleExternalValidation(t *testing.T) {
	mk := func(n int) []ExternalChunk { return externalChunks(n) }
	n := ChunkEvents + 100

	cases := []struct {
		name   string
		steps  int64
		mutate func([]ExternalChunk) []ExternalChunk
	}{
		{"steps mismatch", int64(n) + 1, func(cs []ExternalChunk) []ExternalChunk { return cs }},
		{"short middle chunk", int64(n) - 5, func(cs []ExternalChunk) []ExternalChunk {
			cs[0].N -= 5
			return cs
		}},
		{"zero-length chunk", int64(n), func(cs []ExternalChunk) []ExternalChunk {
			cs[1].N = 0
			return cs
		}},
		{"oversized chunk", int64(n), func(cs []ExternalChunk) []ExternalChunk {
			cs[0].N = ChunkEvents + 1
			return cs
		}},
		{"short column", int64(n), func(cs []ExternalChunk) []ExternalChunk {
			cs[1].Vals = cs[1].Vals[:10]
			return cs
		}},
		{"snap table mismatch", int64(n), func(cs []ExternalChunk) []ExternalChunk {
			cs[0].SnapOff = cs[0].SnapOff[:len(cs[0].SnapOff)-1]
			return cs
		}},
		{"snap index descending", int64(n), func(cs []ExternalChunk) []ExternalChunk {
			if len(cs[0].SnapAt) < 2 {
				t.Fatal("test stream needs >=2 snapshots in chunk 0")
			}
			cs[0].SnapAt[1] = cs[0].SnapAt[0]
			return cs
		}},
		{"snap index out of range", int64(n), func(cs []ExternalChunk) []ExternalChunk {
			at := cs[0].SnapAt
			at[len(at)-1] = int32(cs[0].N)
			return cs
		}},
		{"snap offset out of range", int64(n), func(cs []ExternalChunk) []ExternalChunk {
			cs[0].SnapOff[0] = int32(len(cs[0].SnapData)) + 1
			return cs
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			released := 0
			rec, err := AssembleExternal(tc.steps, tc.mutate(mk(n)), func() { released++ })
			if err == nil {
				rec.Release()
				t.Fatal("malformed input accepted")
			}
			if released != 1 {
				t.Fatalf("release hook ran %d times on rejection, want 1", released)
			}
		})
	}
}
