package trace

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"
)

// synthEvents builds a deterministic synthetic stream of n events; every
// snapEvery-th event carries a snapshot whose length varies so the sparse
// side-table sees uneven entries. snapEvery <= 0 disables snapshots.
func synthEvents(n int, snapEvery int) []Event {
	evs := make([]Event, n)
	for i := range evs {
		ev := Event{
			Func:  int32(i % 7),
			ID:    int32(i % 113),
			Frame: int64(i / 13),
			Addr:  int64(i * 3),
			Val:   int64(i)*2654435761 + 17,
			Taken: i%3 == 0,
		}
		if snapEvery > 0 && i%snapEvery == 0 {
			snap := make([]int64, 1+i%5)
			for j := range snap {
				snap[j] = int64(i + j)
			}
			ev.Snapshot = snap
		}
		evs[i] = ev
	}
	return evs
}

// record captures evs through a Recorder, reusing one Event value the way a
// real producer does.
func record(evs []Event) *Recording {
	r := NewRecorder(nil)
	var scratch Event
	for i := range evs {
		scratch = evs[i]
		if evs[i].Snapshot != nil {
			scratch.Snapshot = append([]int64(nil), evs[i].Snapshot...)
		}
		r.Event(&scratch)
	}
	return r.Finalize(int64(len(evs)))
}

// collect replays rec into a copying handler.
func collect(t *testing.T, rec *Recording) []Event {
	t.Helper()
	var got []Event
	err := rec.Replay(context.Background(), HandlerFunc(func(ev *Event) {
		cp := *ev
		if ev.Snapshot != nil {
			cp.Snapshot = append([]int64(nil), ev.Snapshot...)
		}
		got = append(got, cp)
	}))
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return got
}

func TestRecordingRoundTrip(t *testing.T) {
	// Cross two chunk boundaries so chunk handoff and the per-chunk
	// snapshot tables are both exercised.
	evs := synthEvents(2*chunkEvents+1234, 97)
	rec := record(evs)
	if rec.Len() != int64(len(evs)) || rec.Steps() != int64(len(evs)) || !rec.Complete() {
		t.Fatalf("Len=%d Steps=%d Complete=%v; want %d/%d/true", rec.Len(), rec.Steps(), rec.Complete(), len(evs), len(evs))
	}
	got := collect(t, rec)
	if len(got) != len(evs) {
		t.Fatalf("replayed %d events; want %d", len(got), len(evs))
	}
	for i := range evs {
		if !reflect.DeepEqual(got[i], evs[i]) {
			t.Fatalf("event %d: got %+v want %+v", i, got[i], evs[i])
		}
	}
}

func TestRecordingReplayLimit(t *testing.T) {
	evs := synthEvents(5000, 0)
	rec := record(evs)
	var n int64
	var rp Replayer
	if err := rp.Replay(context.Background(), rec, HandlerFunc(func(*Event) { n++ }), 777); err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if n != 777 {
		t.Fatalf("limit replay fed %d events; want 777", n)
	}
}

func TestReplayCtxCancel(t *testing.T) {
	evs := synthEvents(100000, 0)
	rec := record(evs)
	ctx, cancel := context.WithCancel(context.Background())
	var n int64
	err := rec.Replay(ctx, HandlerFunc(func(*Event) {
		n++
		if n == 2000 {
			cancel()
		}
	}))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v; want context.Canceled", err)
	}
	if n >= rec.Len() || n < 2000 {
		t.Fatalf("cancellation fed %d of %d events", n, rec.Len())
	}
}

func TestRecordingTruncate(t *testing.T) {
	evs := synthEvents(chunkEvents+500, 33)
	rec := record(evs)
	cut := int64(chunkEvents + 10)
	rec.Truncate(cut)
	if rec.Len() != cut {
		t.Fatalf("Len after truncate = %d; want %d", rec.Len(), cut)
	}
	if rec.Steps() == rec.Len() {
		t.Fatal("truncation should leave Steps() != Len()")
	}
	got := collect(t, rec)
	if int64(len(got)) != cut {
		t.Fatalf("replayed %d events after truncate; want %d", len(got), cut)
	}
	for i := range got {
		want := evs[i]
		if want.Snapshot == nil {
			want.Snapshot = nil
		}
		if !reflect.DeepEqual(got[i], want) {
			t.Fatalf("event %d after truncate: got %+v want %+v", i, got[i], want)
		}
	}
}

func TestRecordingChecksum(t *testing.T) {
	evs := synthEvents(10000, 50)
	a, b := record(evs), record(evs)
	if a.Checksum() != b.Checksum() {
		t.Fatal("identical recordings disagree on checksum")
	}
	evs[5000].Val++
	c := record(evs)
	if a.Checksum() == c.Checksum() {
		t.Fatal("single-word mutation left the checksum unchanged")
	}
	a.Truncate(9000)
	if a.Checksum() == b.Checksum() {
		t.Fatal("truncation left the checksum unchanged")
	}
}

// TestRecordingChecksumMemoInvalidation exercises the checksum memo's
// lifecycle under -race: many concurrent Checksum callers while the memo is
// cold (racing to publish it) and warm (reading it), then Truncate and
// Release invalidations with fresh concurrent readers after each. The
// mutations themselves are sole-owner operations (the type's contract), so
// they run alone between WaitGroup barriers; the shared state under test is
// the sum/sumOK pair.
func TestRecordingChecksumMemoInvalidation(t *testing.T) {
	const readers = 8
	evs := synthEvents(2*chunkEvents+100, 25)
	rec, twin := record(evs), record(evs)

	// checksums fans out concurrent Checksum calls and asserts they agree.
	checksums := func(r *Recording) uint64 {
		t.Helper()
		got := make([]uint64, readers)
		var wg sync.WaitGroup
		for i := range got {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				got[i] = r.Checksum()
			}(i)
		}
		wg.Wait()
		for i := 1; i < readers; i++ {
			if got[i] != got[0] {
				t.Fatalf("concurrent checksums disagree: %#x vs %#x", got[i], got[0])
			}
		}
		return got[0]
	}

	full := checksums(rec) // memo cold: every reader computes, one publishes
	if full != twin.Checksum() {
		t.Fatal("identical recordings disagree on checksum")
	}
	if again := checksums(rec); again != full { // memo warm: pure loads
		t.Fatalf("memoized checksum %#x != computed %#x", again, full)
	}

	cut := int64(chunkEvents + 7)
	rec.Truncate(cut)
	truncated := checksums(rec)
	if truncated == full {
		t.Fatal("truncation did not invalidate the checksum memo")
	}
	twin.Truncate(cut)
	if truncated != twin.Checksum() {
		t.Fatal("identically truncated recordings disagree on checksum")
	}

	rec.Release()
	released := checksums(rec)
	if released == truncated {
		t.Fatal("release did not invalidate the checksum memo")
	}
	if released != (&Recording{}).Checksum() {
		t.Fatal("released recording's checksum differs from an empty recording's")
	}
	twin.Release()
}

func TestRecordingBytesAndRelease(t *testing.T) {
	rec := record(synthEvents(3*chunkEvents, 11))
	if rec.Bytes() <= 0 {
		t.Fatal("finished recording reports zero bytes")
	}
	rec.Release()
	rec.Release() // idempotent
	if rec.Len() != 0 || rec.Bytes() != 0 {
		t.Fatalf("released recording still holds %d events / %d bytes", rec.Len(), rec.Bytes())
	}
	// Pooled chunks must come back clean for the next capture.
	evs := synthEvents(chunkEvents/2, 7)
	again := record(evs)
	got := collect(t, again)
	for i := range evs {
		if !reflect.DeepEqual(got[i], evs[i]) {
			t.Fatalf("post-release capture corrupt at event %d", i)
		}
	}
}

func TestRecorderAbort(t *testing.T) {
	r := NewRecorder(nil)
	evs := synthEvents(100, 10)
	for i := range evs {
		r.Event(&evs[i])
	}
	r.Abort() // must not panic, and must be safe to abort twice
	r.Abort()
}

func TestRecorderTee(t *testing.T) {
	var teed int64
	r := NewRecorder(HandlerFunc(func(*Event) { teed++ }))
	evs := synthEvents(500, 0)
	for i := range evs {
		r.Event(&evs[i])
	}
	rec := r.Finalize(500)
	if teed != 500 || rec.Len() != 500 {
		t.Fatalf("tee saw %d events, recording holds %d; want 500/500", teed, rec.Len())
	}
}

// TestReplaySteadyStateAllocs mirrors arch.TestSpeculationSteadyStateAllocs:
// replaying a warm recording through a persistent Replayer allocates
// nothing.
func TestReplaySteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is perturbed by the race detector")
	}
	rec := record(synthEvents(chunkEvents+999, 61))
	var sink int64
	h := HandlerFunc(func(ev *Event) { sink += ev.Val + int64(len(ev.Snapshot)) })
	var rp Replayer
	ctx := context.Background()
	if err := rp.Replay(ctx, rec, h, 0); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(5, func() {
		if err := rp.Replay(ctx, rec, h, 0); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Fatalf("steady-state replay allocates %.1f times per pass; want 0", allocs)
	}
	_ = sink
}
