// Package trace defines the execution-trace event model shared by the
// sequential interpreter (producer), the profiler and the SPT architecture
// simulator (consumers). The SPT simulator is trace-driven exactly as in the
// paper (Section 5.1): it reads the sequential execution trace of a program
// and simulates it on two pipelines with separate cycle counters.
package trace

// Event describes one dynamically executed instruction. The producer reuses
// a single Event value between calls; handlers must copy anything they keep.
type Event struct {
	Func  int32 // index of the function in Program.Funcs
	ID    int32 // instruction id within the function (Instr.ID)
	Frame int64 // activation id: unique per function invocation

	Addr int64 // effective word address (Load/Store), block address (Alloc/Free)
	Val  int64 // value written to Dst, or the stored value for Store

	Taken bool // Br only: branch went to Target (true) or Target2 (false)

	// Snapshot is non-nil only for SptFork events: the current frame's
	// register file at the fork point (the register context that the SPT
	// machine copies to the speculative core). The slice is reused by the
	// producer; copy it if it must outlive the callback.
	Snapshot []int64
}

// Handler consumes trace events in sequential program order.
type Handler interface {
	Event(ev *Event)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(ev *Event)

// Event implements Handler.
func (f HandlerFunc) Event(ev *Event) { f(ev) }

// Multi fans one event stream out to several handlers in order.
func Multi(hs ...Handler) Handler {
	return HandlerFunc(func(ev *Event) {
		for _, h := range hs {
			h.Event(ev)
		}
	})
}

// Counter counts events; useful as a cheap dynamic-instruction counter.
type Counter struct{ N int64 }

// Event implements Handler.
func (c *Counter) Event(*Event) { c.N++ }
