package trace

import "testing"

func TestHandlerFunc(t *testing.T) {
	var got []int32
	h := HandlerFunc(func(ev *Event) { got = append(got, ev.ID) })
	for i := int32(0); i < 3; i++ {
		h.Event(&Event{ID: i})
	}
	if len(got) != 3 || got[2] != 2 {
		t.Errorf("got %v", got)
	}
}

func TestMultiFanout(t *testing.T) {
	var a, b int
	var order []string
	m := Multi(
		HandlerFunc(func(*Event) { a++; order = append(order, "a") }),
		HandlerFunc(func(*Event) { b++; order = append(order, "b") }),
	)
	m.Event(&Event{})
	m.Event(&Event{})
	if a != 2 || b != 2 {
		t.Errorf("a=%d b=%d", a, b)
	}
	if order[0] != "a" || order[1] != "b" {
		t.Errorf("handlers out of order: %v", order)
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	for i := 0; i < 5; i++ {
		c.Event(&Event{})
	}
	if c.N != 5 {
		t.Errorf("N = %d", c.N)
	}
}

func TestEventReuseContract(t *testing.T) {
	// The producer reuses the Event value; a handler that stores pointers
	// sees mutated data — the documented contract is to copy.
	var stored *Event
	h := HandlerFunc(func(ev *Event) {
		if stored == nil {
			stored = ev
		}
	})
	shared := &Event{ID: 1}
	h.Event(shared)
	shared.ID = 99
	if stored.ID != 99 {
		t.Error("expected aliasing through the shared event (copy-on-keep contract)")
	}
}
