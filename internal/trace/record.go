package trace

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
)

// This file implements the record-once/replay-many encoding of an event
// stream. A Recording is a compact columnar copy of every Event a producer
// emitted, chunked so capture never needs one giant contiguous allocation
// and so released recordings recycle fixed-size blocks through a pool.
// Columns cost ~33 bytes per event against 56+ for []Event, and the sparse
// snapshot side-table costs nothing for the (vast majority of) events that
// carry no register snapshot.

// chunkEvents is the fixed capacity of one recording chunk. 32 Ki events
// ≈ 1 MiB per chunk of column data: large enough to amortize chunk
// bookkeeping, small enough that pooling them bounds fragmentation.
const chunkEvents = 1 << 15

// ChunkEvents exposes the chunk capacity to external producers
// (AssembleExternal) whose storage layout must mirror the recorder's
// chunking to yield bit-identical checksums.
const ChunkEvents = chunkEvents

// replayCtxMask mirrors the interpreter's cadence: the replay context is
// polled every time the low bits of the event index wrap.
const replayCtxMask = 1<<10 - 1

// chunk is one fixed-capacity block of columnar event storage. The event
// columns are allocated once at full capacity and indexed by n; the sparse
// snapshot columns grow per chunk and keep their capacity across pool
// cycles.
type chunk struct {
	n      int32
	funcs  []int32
	ids    []int32
	frames []int64
	addrs  []int64
	vals   []int64
	taken  []bool

	// Sparse snapshot side-table: snapAt holds the chunk-local indices of
	// events that carried a snapshot (ascending), snapOff[i] is the offset
	// of snapshot i in snapData (its end is snapOff[i+1], or len(snapData)
	// for the last one).
	snapAt   []int32
	snapOff  []int32
	snapData []int64

	// noPool marks chunks whose columns alias externally owned storage
	// (e.g. a memory-mapped capture file). Release must not return them to
	// the pool: a pooled chunk would hand the mapping to an unrelated
	// recorder, and the mapping itself is reclaimed by the recording's
	// release hook instead.
	noPool bool
}

var chunkPool = sync.Pool{New: func() any {
	return &chunk{
		funcs:  make([]int32, chunkEvents),
		ids:    make([]int32, chunkEvents),
		frames: make([]int64, chunkEvents),
		addrs:  make([]int64, chunkEvents),
		vals:   make([]int64, chunkEvents),
		taken:  make([]bool, chunkEvents),
	}
}}

func grabChunk() *chunk {
	c := chunkPool.Get().(*chunk)
	c.n = 0
	c.snapAt = c.snapAt[:0]
	c.snapOff = c.snapOff[:0]
	c.snapData = c.snapData[:0]
	return c
}

// snapRange returns the [start, end) window of snapshot i in snapData.
func (c *chunk) snapRange(i int) (int32, int32) {
	start := c.snapOff[i]
	end := int32(len(c.snapData))
	if i+1 < len(c.snapOff) {
		end = c.snapOff[i+1]
	}
	return start, end
}

// bytes is the chunk's resident footprint (capacities, not lengths — the
// columns are preallocated at full capacity).
func (c *chunk) bytes() int64 {
	return int64(cap(c.funcs))*4 + int64(cap(c.ids))*4 +
		int64(cap(c.frames))*8 + int64(cap(c.addrs))*8 + int64(cap(c.vals))*8 +
		int64(cap(c.taken)) +
		int64(cap(c.snapAt))*4 + int64(cap(c.snapOff))*4 + int64(cap(c.snapData))*8
}

// Recording is an immutable captured event stream. It is safe for
// concurrent replay once finalized; Release returns its chunks to the
// shared pool and must only be called when no replay can still be reading
// it.
type Recording struct {
	chunks   []*chunk
	n        int64 // events stored
	steps    int64 // producer-reported dynamic instruction count
	complete bool

	// Memoized Checksum result. A finalized recording is immutable, so the
	// digest is computed once and reused by every subsequent integrity
	// check; Truncate (and Release) invalidate it. Two concurrent first
	// calls both compute the same value, so the unsynchronized store is
	// benign.
	sum   atomic.Uint64
	sumOK atomic.Bool

	// onRelease, when set, reclaims externally owned column storage
	// (munmap of a capture file) after the chunks are detached. Installed
	// by AssembleExternal; nil for recorder-built recordings.
	onRelease func()

	releaseOnce sync.Once
}

// Len returns the number of recorded events.
func (r *Recording) Len() int64 {
	if r == nil {
		return 0
	}
	return r.n
}

// Steps returns the producer's dynamic instruction count at Finalize. A
// healthy recording has Steps() == Len(); a mismatch means truncation.
func (r *Recording) Steps() int64 {
	if r == nil {
		return 0
	}
	return r.steps
}

// Complete reports whether the recording was finalized by its producer.
func (r *Recording) Complete() bool { return r != nil && r.complete }

// Bytes returns the recording's resident memory footprint.
func (r *Recording) Bytes() int64 {
	if r == nil {
		return 0
	}
	var b int64
	for _, c := range r.chunks {
		b += c.bytes()
	}
	return b
}

// CacheBytes implements the artifact cache's size interface: recordings are
// bounded by bytes, not entry count.
func (r *Recording) CacheBytes() int64 { return r.Bytes() }

// Checksum returns a word-granular FNV-1a digest over every column and the
// step count. It is an integrity witness (bit flips, post-completion
// mutation), not a cryptographic hash. For a finalized recording the digest
// is memoized — recordings are immutable once complete, so per-hit cache
// integrity checks stop re-hashing the full event stream. The memo is
// dropped by Truncate and Release, which are the only sanctioned mutations.
func (r *Recording) Checksum() uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	mix := func(v uint64) {
		h ^= v
		h *= prime
	}
	if r == nil {
		return h
	}
	if r.sumOK.Load() {
		return r.sum.Load()
	}
	mix(uint64(r.steps))
	mix(uint64(r.n))
	for _, c := range r.chunks {
		n := int(c.n)
		for i := 0; i < n; i++ {
			mix(uint64(uint32(c.funcs[i])))
			mix(uint64(uint32(c.ids[i])))
			mix(uint64(c.frames[i]))
			mix(uint64(c.addrs[i]))
			mix(uint64(c.vals[i]))
			if c.taken[i] {
				mix(1)
			} else {
				mix(0)
			}
		}
		for _, at := range c.snapAt {
			mix(uint64(uint32(at)))
		}
		for _, v := range c.snapData {
			mix(uint64(v))
		}
	}
	if r.complete {
		// Store the value before publishing the flag so a concurrent reader
		// that observes sumOK also observes the digest.
		r.sum.Store(h)
		r.sumOK.Store(true)
	}
	return h
}

// Truncate drops every event past n while leaving the recorded step count
// untouched, so Len() != Steps() flags the recording as torn. It exists for
// corruption testing; truncating a shared cached recording would corrupt it
// for every other replayer.
func (r *Recording) Truncate(n int64) {
	if r == nil || n >= r.n {
		return
	}
	if n < 0 {
		n = 0
	}
	r.sumOK.Store(false) // the memoized digest no longer matches the bytes
	keep := int((n + chunkEvents - 1) / chunkEvents)
	r.chunks = r.chunks[:keep]
	if keep > 0 {
		c := r.chunks[keep-1]
		local := int32(n - int64(keep-1)*chunkEvents)
		c.n = local
		// Trim the snapshot side-table to the surviving events.
		for i, at := range c.snapAt {
			if at >= local {
				c.snapData = c.snapData[:c.snapOff[i]]
				c.snapAt = c.snapAt[:i]
				c.snapOff = c.snapOff[:i]
				break
			}
		}
	}
	r.n = n
}

// Release returns the recording's chunks to the shared pool and empties it.
// It is idempotent, but must only be called by a sole owner: a released
// chunk is immediately reusable by concurrent recorders, so releasing a
// recording another goroutine is still replaying corrupts that replay.
func (r *Recording) Release() {
	if r == nil {
		return
	}
	r.releaseOnce.Do(func() {
		for _, c := range r.chunks {
			if c.noPool {
				continue
			}
			chunkPool.Put(c)
		}
		r.chunks = nil
		r.n = 0
		r.steps = 0
		r.complete = false
		r.sumOK.Store(false)
		if r.onRelease != nil {
			r.onRelease()
			r.onRelease = nil
		}
	})
}

// Recorder captures an event stream into a Recording. It implements
// Handler, optionally teeing every event (unmodified, snapshot aliasing
// intact) to a downstream handler, so capture can ride along a live
// simulation. Not safe for concurrent use; producers are sequential.
type Recorder struct {
	tee Handler
	rec *Recording
	cur *chunk
}

// NewRecorder returns a recorder; tee (may be nil) receives every event
// after it is captured.
func NewRecorder(tee Handler) *Recorder {
	return &Recorder{tee: tee, rec: &Recording{}}
}

// Event implements Handler.
func (r *Recorder) Event(ev *Event) {
	c := r.cur
	if c == nil || c.n == chunkEvents {
		c = grabChunk()
		r.rec.chunks = append(r.rec.chunks, c)
		r.cur = c
	}
	i := c.n
	c.funcs[i] = ev.Func
	c.ids[i] = ev.ID
	c.frames[i] = ev.Frame
	c.addrs[i] = ev.Addr
	c.vals[i] = ev.Val
	c.taken[i] = ev.Taken
	if ev.Snapshot != nil {
		c.snapAt = append(c.snapAt, i)
		c.snapOff = append(c.snapOff, int32(len(c.snapData)))
		c.snapData = append(c.snapData, ev.Snapshot...)
	}
	c.n = i + 1
	r.rec.n++
	if r.tee != nil {
		r.tee.Event(ev)
	}
}

// Finalize seals the capture with the producer's dynamic step count and
// returns the finished Recording. The recorder must not be used afterwards.
func (r *Recorder) Finalize(steps int64) *Recording {
	rec := r.rec
	rec.steps = steps
	rec.complete = true
	r.rec, r.cur = nil, nil
	return rec
}

// Abort discards the capture (producer failed mid-run), returning its
// chunks to the pool.
func (r *Recorder) Abort() {
	if r.rec != nil {
		r.rec.Release()
	}
	r.rec, r.cur = nil, nil
}

// Replayer re-emits recordings. The zero value is ready; reusing one
// Replayer across Replay calls keeps the steady state allocation-free (the
// replayed Event lives in the Replayer, not on a per-call heap escape).
type Replayer struct {
	ev Event
}

// Replay feeds the first limit events (limit <= 0: all) of rec to h in
// order, polling ctx on the interpreter's cadence (every 1024 events). The
// emitted Event is reused between calls and its Snapshot aliases the
// recording's storage — handlers must copy anything they keep, exactly as
// with a live producer. Events recorded without a snapshot replay with a
// nil Snapshot; zero-length snapshots may also replay as nil (consumers
// treat empty and missing snapshots alike).
func (rp *Replayer) Replay(ctx context.Context, rec *Recording, h Handler, limit int64) error {
	if rec == nil {
		return nil
	}
	if limit <= 0 || limit > rec.n {
		limit = rec.n
	}
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	ev := &rp.ev
	var fed int64
	for _, c := range rec.chunks {
		if fed >= limit {
			break
		}
		n := int64(c.n)
		if rem := limit - fed; n > rem {
			n = rem
		}
		si := 0
		for i := int64(0); i < n; i++ {
			if fed&replayCtxMask == replayCtxMask && done != nil {
				select {
				case <-done:
					return fmt.Errorf("trace: replay interrupted after %d events: %w", fed, ctx.Err())
				default:
				}
			}
			ev.Func = c.funcs[i]
			ev.ID = c.ids[i]
			ev.Frame = c.frames[i]
			ev.Addr = c.addrs[i]
			ev.Val = c.vals[i]
			ev.Taken = c.taken[i]
			ev.Snapshot = nil
			if si < len(c.snapAt) && c.snapAt[si] == int32(i) {
				start, end := c.snapRange(si)
				ev.Snapshot = c.snapData[start:end:end]
				si++
			}
			h.Event(ev)
			fed++
		}
	}
	return nil
}

// Replay feeds the whole recording to h; see Replayer.Replay for the
// aliasing contract. Callers replaying repeatedly should hold their own
// Replayer to avoid its per-call allocation.
func (r *Recording) Replay(ctx context.Context, h Handler) error {
	var rp Replayer
	return rp.Replay(ctx, r, h, 0)
}
