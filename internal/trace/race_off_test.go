//go:build !race

package trace

// raceEnabled reports whether the race detector is active; allocation-exact
// tests skip under it.
const raceEnabled = false
