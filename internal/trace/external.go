package trace

import (
	"fmt"
	"runtime"
)

// This file lets an external producer — the native-capture subprocess in
// internal/nativecap — hand a finished event stream to the trace package
// without copying it through a Recorder. The producer lays its columns out
// in recorder chunking (ChunkEvents events per chunk) and the assembled
// Recording is indistinguishable from a recorder-built one: same Checksum,
// same replay behavior, same cache accounting. The only difference is
// ownership: the columns may alias a memory-mapped file, so the chunks are
// marked noPool and the mapping is reclaimed by a release hook instead of
// the chunk pool.

// ExternalChunk is one recorder-shaped chunk of externally owned column
// storage. All event columns must hold at least N entries; the snapshot
// side-table follows the same contract as the recorder's (SnapAt ascending
// chunk-local indices, SnapOff[i] the start of snapshot i in SnapData).
type ExternalChunk struct {
	N      int
	Funcs  []int32
	IDs    []int32
	Frames []int64
	Addrs  []int64
	Vals   []int64
	Taken  []bool

	SnapAt   []int32
	SnapOff  []int32
	SnapData []int64
}

// AssembleExternal builds a complete Recording from externally produced
// chunks. steps must equal the total event count (a healthy recording has
// Len() == Steps(); torn captures must not be assembled). release, when
// non-nil, is invoked exactly once when the recording is released — it owns
// whatever backs the column slices (typically an munmap). Because cache
// eviction may drop the last reference without an explicit Release, a
// finalizer backstops the hook; explicit Release remains the prompt path.
//
// Every chunk except the last must hold exactly ChunkEvents events, exactly
// as the recorder chunks a live stream — Checksum folds chunk boundaries
// into the digest implicitly via column order, so mis-chunked input would
// verify and replay correctly but is rejected anyway to keep the invariant
// simple.
func AssembleExternal(steps int64, chunks []ExternalChunk, release func()) (*Recording, error) {
	fail := func(format string, args ...any) (*Recording, error) {
		if release != nil {
			release()
		}
		return nil, fmt.Errorf("trace: assemble external: "+format, args...)
	}
	var total int64
	for i, ec := range chunks {
		if ec.N <= 0 || ec.N > chunkEvents {
			return fail("chunk %d has %d events (want 1..%d)", i, ec.N, chunkEvents)
		}
		if i < len(chunks)-1 && ec.N != chunkEvents {
			return fail("chunk %d short (%d events) but not last", i, ec.N)
		}
		if len(ec.Funcs) < ec.N || len(ec.IDs) < ec.N || len(ec.Frames) < ec.N ||
			len(ec.Addrs) < ec.N || len(ec.Vals) < ec.N || len(ec.Taken) < ec.N {
			return fail("chunk %d columns shorter than %d events", i, ec.N)
		}
		if len(ec.SnapAt) != len(ec.SnapOff) {
			return fail("chunk %d snapshot table mismatch (%d at, %d off)", i, len(ec.SnapAt), len(ec.SnapOff))
		}
		last := int32(-1)
		for j, at := range ec.SnapAt {
			if at <= last || at >= int32(ec.N) {
				return fail("chunk %d snapshot index %d out of order or range", i, at)
			}
			last = at
			off := ec.SnapOff[j]
			if off < 0 || int(off) > len(ec.SnapData) {
				return fail("chunk %d snapshot offset %d out of range", i, off)
			}
			if j > 0 && off < ec.SnapOff[j-1] {
				return fail("chunk %d snapshot offsets decrease", i)
			}
		}
		total += int64(ec.N)
	}
	if steps != total {
		return fail("%d steps for %d events", steps, total)
	}
	rec := &Recording{n: total, steps: steps, complete: true, onRelease: release}
	rec.chunks = make([]*chunk, len(chunks))
	for i, ec := range chunks {
		rec.chunks[i] = &chunk{
			n:        int32(ec.N),
			funcs:    ec.Funcs,
			ids:      ec.IDs,
			frames:   ec.Frames,
			addrs:    ec.Addrs,
			vals:     ec.Vals,
			taken:    ec.Taken,
			snapAt:   ec.SnapAt,
			snapOff:  ec.SnapOff,
			snapData: ec.SnapData,
			noPool:   true,
		}
	}
	if release != nil {
		runtime.SetFinalizer(rec, (*Recording).Release)
	}
	return rec, nil
}
