package trace

import (
	"context"
	"fmt"
)

// This file implements broadcast replay: one decode pass over a Recording
// drives any number of consumers at once. Where Replayer pays the columnar
// decode (and the chunk walk, and the context polling) once per consumer,
// MultiReplayer pays it once per sweep — each event is materialized a single
// time and fanned out to every still-live handler.

// broadcastBlock is the burst size of the fan-out: events are decoded into
// a block of this many materialized Events, and each live handler consumes
// the whole block before the next handler starts. Bursting keeps one
// engine's working set hot for hundreds of events at a time — a strict
// per-event round-robin cycles every engine's state through the cache at
// each step, which costs more than the decode it saves. 512 events keep the
// block itself comfortably inside L2.
const broadcastBlock = 512

// Quitter is optionally implemented by broadcast handlers that can lose
// interest mid-stream (an engine that exhausted its cycle budget, a probe
// that found what it was looking for). MultiReplayer polls Quit between
// blocks (every 512 events) and drops handlers that report true; when none
// remain the pass ends early. Within a block a quit handler keeps receiving
// events, so Quit must be safe to call — and Event safe to no-op — after
// the handler has given up.
type Quitter interface {
	Quit() bool
}

// bsink is one broadcast consumer: its handler, the number of events still
// owed to it, and its optional quit probe.
type bsink struct {
	h     Handler
	left  int64 // events remaining; always > 0 while the sink is live
	quit  Quitter
	index int // position in the caller's handler slice (for diagnostics)
}

// MultiReplayer fans one recording out to several handlers in a single
// decode pass. The zero value is ready; reusing one MultiReplayer across
// calls keeps the steady state allocation-free (the decode block and the
// sink scratch live in the replayer, so per-pass cost is O(handlers + block),
// never O(events)).
type MultiReplayer struct {
	blk   []Event
	sinks []bsink
}

// Replay feeds rec to every handler in hs in one pass. limits[i] bounds the
// events delivered to hs[i] (<= 0: the whole recording); limits may be nil
// (no handler is bounded) but must otherwise match hs in length. Each
// handler observes exactly the same ordered event prefix it would have seen
// from its own Replayer: events are decoded once into a block and each
// handler consumes the block in a burst, so *within* a block handlers run
// one after another rather than interleaved per event (they are independent,
// so the interleaving is unobservable). Emitted Events are reused between
// blocks and their Snapshot aliases the recording's storage, so handlers
// must copy anything they keep, exactly as with a live producer.
//
// Handlers implementing Quitter are polled between blocks (every 512
// events) and dropped once they report true; the pass returns early when no
// live handler remains. ctx is polled on the same cadence. A nil recording
// or an empty handler set replays nothing.
func (mr *MultiReplayer) Replay(ctx context.Context, rec *Recording, hs []Handler, limits []int64) error {
	if rec == nil || len(hs) == 0 {
		return nil
	}
	if limits != nil && len(limits) != len(hs) {
		return fmt.Errorf("trace: broadcast limits mismatch: %d handlers, %d limits", len(hs), len(limits))
	}
	live := mr.sinks[:0]
	for i, h := range hs {
		if h == nil {
			continue
		}
		lim := rec.n
		if limits != nil && limits[i] > 0 && limits[i] < lim {
			lim = limits[i]
		}
		if lim <= 0 {
			continue
		}
		s := bsink{h: h, left: lim, index: i}
		s.quit, _ = h.(Quitter)
		live = append(live, s)
	}
	mr.sinks = live // keep the scratch (and its capacity) for the next pass
	if mr.blk == nil {
		mr.blk = make([]Event, broadcastBlock)
	}
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	var fed int64 // events decoded (any handler's furthest position)
	for _, c := range rec.chunks {
		if len(live) == 0 {
			break
		}
		n := int64(c.n)
		si := 0
		for off := int64(0); off < n && len(live) > 0; {
			// Decode the next block once.
			bn := n - off
			if bn > broadcastBlock {
				bn = broadcastBlock
			}
			blk := mr.blk[:bn]
			for i := range blk {
				j := off + int64(i)
				ev := &blk[i]
				ev.Func = c.funcs[j]
				ev.ID = c.ids[j]
				ev.Frame = c.frames[j]
				ev.Addr = c.addrs[j]
				ev.Val = c.vals[j]
				ev.Taken = c.taken[j]
				ev.Snapshot = nil
				if si < len(c.snapAt) && c.snapAt[si] == int32(j) {
					start, end := c.snapRange(si)
					ev.Snapshot = c.snapData[start:end:end]
					si++
				}
			}
			// Fan out in bursts: each handler walks the whole block before
			// the next handler touches it.
			for k := 0; k < len(live); {
				s := &live[k]
				take := blk
				if s.left < bn {
					take = blk[:s.left]
				}
				for i := range take {
					s.h.Event(&take[i])
				}
				s.left -= int64(len(take))
				if s.left == 0 {
					live[k] = live[len(live)-1]
					live = live[:len(live)-1]
				} else {
					k++
				}
			}
			off += bn
			fed += bn
			// Poll cancellation and shed handlers that lost interest.
			if done != nil {
				select {
				case <-done:
					return fmt.Errorf("trace: broadcast interrupted after %d events: %w", fed, ctx.Err())
				default:
				}
			}
			for k := 0; k < len(live); {
				if live[k].quit != nil && live[k].quit.Quit() {
					live[k] = live[len(live)-1]
					live = live[:len(live)-1]
				} else {
					k++
				}
			}
		}
	}
	// Drop handler references so a retained MultiReplayer does not pin
	// finished engines — the scratch backing array still holds sinks that
	// were shed during the pass, and block events may alias snapshots.
	full := mr.sinks[:cap(mr.sinks)]
	for i := range full {
		full[i] = bsink{}
	}
	mr.sinks = full[:0]
	for i := range mr.blk {
		mr.blk[i].Snapshot = nil
	}
	return nil
}
