package compiler

import (
	"encoding/json"
	"fmt"
	"io"
)

// reportFile is the serialized pass-1 output: the paper's framework writes
// every candidate loop's optimal partition and estimated parallelism after
// pass 1 and reads it back in pass 2 (Section 4.1). This repository runs
// both passes in-process, but the same artifact is exported for inspection
// and tooling (sptc -json).
type reportFile struct {
	Version int           `json:"version"`
	Loops   []*LoopReport `json:"loops"`
}

const reportVersion = 1

// WriteReport serializes the per-loop analysis as JSON.
func WriteReport(w io.Writer, res *Result) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(reportFile{Version: reportVersion, Loops: res.Loops})
}

// ReadReport parses a serialized pass-1 report.
func ReadReport(r io.Reader) ([]*LoopReport, error) {
	var rf reportFile
	if err := json.NewDecoder(r).Decode(&rf); err != nil {
		return nil, fmt.Errorf("compiler: bad report: %w", err)
	}
	if rf.Version != reportVersion {
		return nil, fmt.Errorf("compiler: report version %d, want %d", rf.Version, reportVersion)
	}
	return rf.Loops, nil
}
