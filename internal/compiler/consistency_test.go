package compiler

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/profiler"
)

// The cost model is a *selection* heuristic — it need not predict cycles,
// but its estimated speedups must correlate with the simulator's measured
// loop speedups strongly enough that "all good and only good" selection
// works. This test runs a family of loops across the parallelism spectrum
// and checks the estimate and the measurement agree on which side of
// break-even each loop falls.

// buildSpectrumLoop builds a loop whose parallel fraction is controlled:
// depth units of independent chain work plus serialDepth units of chain
// seeded from a carried memory cell.
func buildSpectrumLoop(n int64, depth, serialDepth int) *ir.Program {
	b := ir.NewFuncBuilder("main", 0)
	i, c, z, g, v, w := b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg()
	b.Block("entry")
	b.MovI(i, n)
	b.MovI(z, 0)
	b.Jmp("head")
	b.Block("head")
	b.ALU(ir.CmpGT, c, i, z)
	b.Br(c, "body", "exit")
	b.Block("body")
	if serialDepth > 0 {
		b.GAddr(g, "cell")
		b.Load(v, g, 0)
		b.MulI(v, v, 3)
		for k := 0; k < serialDepth; k++ {
			b.AddI(v, v, int64(k))
			b.MulI(v, v, 5)
		}
	} else {
		b.MovI(v, 1)
	}
	b.MulI(w, i, 7)
	for k := 0; k < depth; k++ {
		b.AddI(w, w, int64(k))
		b.MulI(w, w, 3)
	}
	if serialDepth > 0 {
		b.ALU(ir.Add, v, v, w)
		b.Store(g, 0, v)
	}
	b.AddI(i, i, -1)
	b.Jmp("head")
	b.Block("exit")
	b.Ret(w)
	return ir.NewProgramBuilder("main").AddFunc(b.Done()).AddGlobal("cell", 1).Done()
}

func measuredLoopSpeedup(t *testing.T, orig, xform *ir.Program) float64 {
	t.Helper()
	sim := func(p *ir.Program, cfg arch.Config) *arch.RunStats {
		lp, err := interp.Load(p)
		if err != nil {
			t.Fatal(err)
		}
		st, err := arch.NewMachine(lp, cfg).Run()
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	base := sim(orig, arch.BaselineConfig())
	spt := sim(xform, arch.DefaultConfig())
	key := profiler.LoopKey{Func: "main", Header: "head"}
	bl, sl := base.PerLoop[key], spt.PerLoop[key]
	if bl == nil || sl == nil || sl.Cycles == 0 {
		t.Fatal("loop not measured")
	}
	return float64(bl.Cycles) / float64(sl.Cycles)
}

func TestEstimateTracksMeasurement(t *testing.T) {
	cases := []struct {
		name                string
		depth, serial       int
		expectParallelOrNot bool // true: should win; false: should not
	}{
		{"fully-parallel-deep", 16, 0, true},
		{"fully-parallel-shallow", 6, 0, true},
		{"mostly-parallel", 14, 3, true},
		{"mostly-serial", 3, 14, false},
		{"fully-serial", 0, 16, false},
	}
	opts := DefaultOptions()
	opts.UnrollFactor = 0
	opts.MinSpeedup = 0 // transform regardless; we compare numbers
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := buildSpectrumLoop(400, tc.depth, tc.serial)
			res, err := Compile(p, opts)
			if err != nil {
				t.Fatal(err)
			}
			var rep *LoopReport
			for _, l := range res.Loops {
				if l.Key.Header == "head" {
					rep = l
				}
			}
			if rep == nil || !rep.Selected {
				t.Fatalf("loop not transformed: %+v", rep)
			}
			measured := measuredLoopSpeedup(t, p, res.Program)
			est := rep.EstSpeedup
			t.Logf("est %.2f measured %.2f", est, measured)
			if tc.expectParallelOrNot {
				if est < 1.05 {
					t.Errorf("estimate %.2f misses a parallel loop", est)
				}
				if measured < 1.1 {
					t.Errorf("measured %.2f: loop did not actually win", measured)
				}
			} else {
				if est > 1.15 {
					t.Errorf("estimate %.2f oversells a serial loop", est)
				}
				if measured > 1.25 {
					t.Errorf("measured %.2f: 'serial' loop unexpectedly won big", measured)
				}
			}
			// Selection consistency under the real threshold: the default
			// MinSpeedup of 1.05 keeps winners and drops losers.
			if tc.expectParallelOrNot && est < 1.05 {
				t.Error("default selection would wrongly reject this loop")
			}
		})
	}
}
