// Package compiler is the cost-driven two-pass SPT compilation framework of
// Section 4. Pass 1 profiles the program, selects loop candidates by simple
// criteria (supported shape, body size, trip count), applies loop
// preprocessing (unrolling), and finds each candidate's optimal partition
// with its estimated speculative parallelism — without transforming
// anything. Pass 2 evaluates all loops together, selects "all good and only
// good" SPT loops (resolving cross-loop conflicts), and emits the final SPT
// code via the transformation package.
package compiler

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/cfg"
	"repro/internal/cost"
	"repro/internal/ddg"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/opt"
	"repro/internal/partition"
	"repro/internal/profiler"
	"repro/internal/transform"
)

// Options configures the compilation.
type Options struct {
	Cost cost.Params
	Part partition.Options

	// Loop selection criteria (Section 4.1 / Section 5.3).
	MaxBodySize   float64 // reject loops with larger average dynamic bodies (1000; 2500 for gap)
	MinTripCount  float64 // reject very short loops (crafty's problem)
	MinIterations int64   // profile significance threshold
	MinSpeedup    float64 // estimated loop speedup required for selection

	// Loop preprocessing.
	UnrollBelow  float64 // unroll candidates with smaller dynamic bodies
	UnrollFactor int     // replication factor (0 disables unrolling)

	// Optimize runs the classic scalar optimizer (internal/opt) before SPT
	// compilation: the paper generates SPT code inside an -O3 compiler.
	Optimize bool

	ProfileStepLimit int64
}

// DefaultOptions mirrors the paper's practical settings.
func DefaultOptions() Options {
	return Options{
		Cost:          cost.DefaultParams(),
		Part:          partition.DefaultOptions(),
		MaxBodySize:   1000,
		MinTripCount:  8,
		MinIterations: 16,
		MinSpeedup:    1.05,
		UnrollBelow:   12,
		UnrollFactor:  2,
		Optimize:      true,
	}
}

// LoopReport is the pass-1/pass-2 record for one candidate loop.
type LoopReport struct {
	Key profiler.LoopKey

	BodySize   float64 // average dynamic instructions per iteration (inclusive)
	BodyCycles float64
	TripCount  float64
	Iterations int64
	InclCycles int64   // inclusive latency-weighted coverage
	Coverage   float64 // InclCycles / program total

	Candidates int // register violation candidates
	Hoisted    []ir.Reg
	Predicted  []ir.Reg

	MissCost   float64
	PreFork    float64
	EstSpeedup float64

	Unrolled int // applied unroll factor (0 = none)
	Selected bool
	Reason   string // rejection reason when not selected

	StartLabel string // fork target after transformation (selected loops)
}

// Result is the outcome of a full compilation.
type Result struct {
	Program *ir.Program // transformed program (a clone; input left intact)
	Profile *profiler.Profile
	Loops   []*LoopReport // every analyzable candidate loop, stable order
}

// SelectedLoops returns the reports of loops that were transformed.
func (r *Result) SelectedLoops() []*LoopReport {
	var out []*LoopReport
	for _, l := range r.Loops {
		if l.Selected {
			out = append(out, l)
		}
	}
	return out
}

// Compile runs the two-pass cost-driven framework on p.
func Compile(p *ir.Program, opts Options) (*Result, error) {
	return CompileContext(context.Background(), p, opts)
}

// CompileContext is Compile under a cancellation/deadline context. The
// context bounds the profiling runs (the only unbounded-time stages of
// compilation); cancellation surfaces as a wrapped context error.
func CompileContext(ctx context.Context, p *ir.Program, opts Options) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("compiler: input invalid: %w", err)
	}
	work := p.Clone()
	if opts.Optimize {
		work = opt.Optimize(work)
	}

	// ---- Pass 1a: profile the original program.
	prof, err := profileProgram(ctx, work, opts.ProfileStepLimit)
	if err != nil {
		return nil, fmt.Errorf("compiler: profiling failed: %w", err)
	}

	// ---- Pass 1b: loop preprocessing — unroll small hot candidates, then
	// re-profile so pass 2 sees the preprocessed shapes.
	unrolled := map[profiler.LoopKey]int{}
	if opts.UnrollFactor >= 2 {
		for _, f := range work.Funcs {
			g, err := cfg.Build(f)
			if err != nil {
				return nil, fmt.Errorf("compiler: %w", err)
			}
			forest := cfg.FindLoops(g)
			eff := ddg.ComputeEffects(work)
			type job struct {
				header string
				l      *cfg.Loop
			}
			var jobs []job
			for _, l := range forest.Loops {
				if ddg.Analyze(work, f, g, l, eff) == nil {
					continue
				}
				key := profiler.LoopKey{Func: f.Name, Header: f.Blocks[l.Header].Label}
				lp := prof.Loop(key)
				if lp == nil || lp.Iterations < opts.MinIterations {
					continue
				}
				if lp.BodySize() < opts.UnrollBelow && lp.TripCount() >= 2*float64(opts.UnrollFactor) {
					jobs = append(jobs, job{key.Header, l})
					unrolled[key] = opts.UnrollFactor
				}
			}
			for _, j := range jobs {
				// Re-find the loop: earlier unrolls in this function may
				// have appended blocks (header labels are stable).
				g2, l2 := transform.FindLoop(f, j.header)
				_ = g2
				if l2 == nil {
					continue
				}
				if err := transform.Unroll(f, l2, opts.UnrollFactor); err != nil {
					return nil, fmt.Errorf("compiler: unroll %s/%s: %w", f.Name, j.header, err)
				}
			}
		}
		work.Finalize()
		if err := work.Validate(); err != nil {
			return nil, fmt.Errorf("compiler: after unrolling: %w", err)
		}
		if len(unrolled) > 0 {
			prof, err = profileProgram(ctx, work, opts.ProfileStepLimit)
			if err != nil {
				return nil, fmt.Errorf("compiler: re-profiling failed: %w", err)
			}
		}
	}

	// ---- Pass 1c: per-loop analysis, cost modelling and partition search.
	var reports []*LoopReport
	eff := ddg.ComputeEffects(work)
	type planned struct {
		report *LoopReport
		fn     *ir.Func
		part   cost.Partition
		// bodyCallees: functions reachable from calls inside the loop body
		// (used for nested-speculation conflict detection).
		bodyCallees map[string]bool
	}
	var plans []planned
	for _, f := range work.Funcs {
		g, err := cfg.Build(f)
		if err != nil {
			return nil, fmt.Errorf("compiler: %w", err)
		}
		forest := cfg.FindLoops(g)
		for _, l := range forest.Loops {
			a := ddg.Analyze(work, f, g, l, eff)
			if a == nil {
				continue
			}
			key := profiler.LoopKey{Func: f.Name, Header: f.Blocks[l.Header].Label}
			lp := prof.Loop(key)
			rep := &LoopReport{Key: key, Unrolled: unrolled[key]}
			reports = append(reports, rep)
			if lp == nil || lp.Iterations == 0 {
				rep.Reason = "never executed"
				continue
			}
			rep.BodySize = lp.BodySize()
			rep.BodyCycles = lp.BodyCycles()
			rep.TripCount = lp.TripCount()
			rep.Iterations = lp.Iterations
			rep.InclCycles = lp.InclCycles
			if prof.TotalCycles > 0 {
				rep.Coverage = float64(lp.InclCycles) / float64(prof.TotalCycles)
			}
			model := cost.NewModel(a, lp, opts.Cost)
			rep.Candidates = len(model.Candidates)
			res := partition.Search(model, opts.Part)
			rep.MissCost = res.MissCost
			rep.PreFork = res.PreFork
			rep.EstSpeedup = res.Speedup
			for r := range res.Part.Hoist {
				rep.Hoisted = append(rep.Hoisted, r)
			}
			for r := range res.Part.SVP {
				rep.Predicted = append(rep.Predicted, r)
			}
			sortRegs(rep.Hoisted)
			sortRegs(rep.Predicted)

			// Selection criteria.
			switch {
			case lp.Iterations < opts.MinIterations:
				rep.Reason = "too few profiled iterations"
			case rep.TripCount < opts.MinTripCount:
				rep.Reason = "trip count too small"
			case rep.BodySize > opts.MaxBodySize:
				rep.Reason = "loop body too large"
			case rep.EstSpeedup < opts.MinSpeedup:
				rep.Reason = "misspeculation cost too high"
			default:
				plans = append(plans, planned{report: rep, fn: f, part: res.Part,
					bodyCallees: loopCallees(work, f, l)})
			}
		}
	}

	// ---- Pass 2: global selection. Resolve conflicts between loops whose
	// *bodies* (transitively) invoke functions containing other SPT loops —
	// an inner loop's spt_kill would destroy the outer loop's speculation.
	// Loops merely living in the same call chain without dynamic nesting do
	// not conflict.
	sort.Slice(plans, func(i, j int) bool {
		bi := benefit(plans[i].report)
		bj := benefit(plans[j].report)
		if bi != bj {
			return bi > bj
		}
		return plans[i].report.Key.Header < plans[j].report.Key.Header
	})
	var accepted []planned
	for _, pl := range plans {
		conflict := false
		for _, acc := range accepted {
			if pl.bodyCallees[acc.report.Key.Func] || acc.bodyCallees[pl.report.Key.Func] {
				conflict = true
				break
			}
		}
		if conflict {
			pl.report.Reason = "conflicts with a selected SPT loop (nested speculation)"
			continue
		}
		accepted = append(accepted, pl)
	}

	// Transform per function in descending header-block order so earlier
	// loops' instruction ids (and thus their profile annotations) stay
	// valid while later loops are rewritten.
	byFunc := map[string][]planned{}
	for _, pl := range accepted {
		byFunc[pl.report.Key.Func] = append(byFunc[pl.report.Key.Func], pl)
	}
	for _, f := range work.Funcs {
		pls := byFunc[f.Name]
		sort.Slice(pls, func(i, j int) bool {
			return f.BlockIndex(pls[i].report.Key.Header) > f.BlockIndex(pls[j].report.Key.Header)
		})
		for _, pl := range pls {
			g, l := transform.FindLoop(f, pl.report.Key.Header)
			if l == nil {
				pl.report.Reason = "loop vanished during rewriting"
				continue
			}
			a := ddg.Analyze(work, f, g, l, eff)
			if a == nil {
				pl.report.Reason = "loop shape changed during rewriting"
				continue
			}
			lp := prof.Loop(pl.report.Key)
			model := cost.NewModel(a, lp, opts.Cost)
			plan, err := transform.BuildPlan(model, pl.part)
			if err != nil {
				pl.report.Reason = "plan invalid: " + err.Error()
				continue
			}
			tr, err := transform.ApplySPT(f, a, plan)
			if err != nil {
				pl.report.Reason = "transformation failed: " + err.Error()
				continue
			}
			pl.report.Selected = true
			pl.report.StartLabel = tr.StartLabel
		}
	}
	work.Finalize()
	if err := work.Validate(); err != nil {
		return nil, fmt.Errorf("compiler: output invalid: %w", err)
	}

	sort.Slice(reports, func(i, j int) bool {
		if reports[i].Key.Func != reports[j].Key.Func {
			return reports[i].Key.Func < reports[j].Key.Func
		}
		return reports[i].Key.Header < reports[j].Key.Header
	})
	return &Result{Program: work, Profile: prof, Loops: reports}, nil
}

// benefit scores a loop for global selection: coverage weighted by the
// fraction of time the estimated speedup removes.
func benefit(r *LoopReport) float64 {
	if r.EstSpeedup <= 1 {
		return 0
	}
	return float64(r.InclCycles) * (1 - 1/r.EstSpeedup)
}

func sortRegs(rs []ir.Reg) {
	sort.Slice(rs, func(i, j int) bool { return rs[i] < rs[j] })
}

func profileProgram(ctx context.Context, p *ir.Program, stepLimit int64) (*profiler.Profile, error) {
	lp, err := interp.Load(p)
	if err != nil {
		return nil, err
	}
	return profiler.CollectContext(ctx, lp, stepLimit)
}

// loopCallees returns the functions transitively reachable from calls made
// inside loop l's body.
func loopCallees(p *ir.Program, f *ir.Func, l *cfg.Loop) map[string]bool {
	closure := calleeClosure(p)
	out := map[string]bool{}
	for _, bi := range l.Blocks {
		for i := range f.Blocks[bi].Instrs {
			in := &f.Blocks[bi].Instrs[i]
			if in.Op == ir.Call {
				out[in.Target] = true
				for fn := range closure[in.Target] {
					out[fn] = true
				}
			}
		}
	}
	return out
}

// calleeClosure returns, per function, the transitive set of callees.
func calleeClosure(p *ir.Program) map[string]map[string]bool {
	direct := map[string]map[string]bool{}
	for _, f := range p.Funcs {
		set := map[string]bool{}
		for _, b := range f.Blocks {
			for i := range b.Instrs {
				if b.Instrs[i].Op == ir.Call {
					set[b.Instrs[i].Target] = true
				}
			}
		}
		direct[f.Name] = set
	}
	for changed := true; changed; {
		changed = false
		for fn, set := range direct {
			for callee := range set {
				for transitive := range direct[callee] {
					if !set[transitive] {
						set[transitive] = true
						changed = true
					}
				}
			}
			direct[fn] = set
		}
	}
	return direct
}
