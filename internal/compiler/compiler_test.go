package compiler

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/interp"
	"repro/internal/ir"
)

func run(t *testing.T, p *ir.Program) interp.Result {
	t.Helper()
	lp, err := interp.Load(p)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	m := interp.New(lp)
	m.SetStepLimit(100_000_000)
	res, err := m.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

// buildHotLoopProgram: a large parallel loop (good SPT candidate) plus a
// cold setup loop.
func buildHotLoopProgram(n int64, pad int) *ir.Program {
	b := ir.NewFuncBuilder("main", 0)
	i, s, c, z := b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg()
	pads := make([]ir.Reg, pad)
	for k := range pads {
		pads[k] = b.NewReg()
	}
	b.Block("entry")
	b.MovI(i, n)
	b.MovI(s, 0)
	b.MovI(z, 0)
	for k := range pads {
		b.MovI(pads[k], 0)
	}
	b.Jmp("head")
	b.Block("head")
	b.ALU(ir.CmpGT, c, i, z)
	b.Br(c, "body", "exit")
	b.Block("body")
	for k := range pads {
		b.MulI(pads[k], i, int64(k+3))
	}
	for k := range pads {
		b.ALU(ir.Xor, s, s, pads[k]) // consume the filler: it must stay live
	}
	b.ALU(ir.Add, s, s, i)
	b.AddI(i, i, -1)
	b.Jmp("head")
	b.Block("exit")
	b.Ret(s)
	return ir.NewProgramBuilder("main").AddFunc(b.Done()).Done()
}

func TestCompileSelectsHotLoop(t *testing.T) {
	p := buildHotLoopProgram(500, 30)
	res, err := Compile(p, DefaultOptions())
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	sel := res.SelectedLoops()
	if len(sel) != 1 {
		for _, l := range res.Loops {
			t.Logf("loop %v: selected=%v reason=%q est=%.2f", l.Key, l.Selected, l.Reason, l.EstSpeedup)
		}
		t.Fatalf("selected %d loops, want 1", len(sel))
	}
	if sel[0].EstSpeedup < 1.2 {
		t.Errorf("estimated speedup = %v", sel[0].EstSpeedup)
	}
	// Semantics preserved.
	r1, r2 := run(t, p), run(t, res.Program)
	if r1.Ret != r2.Ret || r1.MemChecksum != r2.MemChecksum {
		t.Errorf("compiled program diverges: ret %d/%d", r1.Ret, r2.Ret)
	}
	// The transformed program contains fork and kill.
	forks, kills := 0, 0
	for _, f := range res.Program.Funcs {
		for _, blk := range f.Blocks {
			for i := range blk.Instrs {
				switch blk.Instrs[i].Op {
				case ir.SptFork:
					forks++
				case ir.SptKill:
					kills++
				}
			}
		}
	}
	if forks != 1 || kills == 0 {
		t.Errorf("forks=%d kills=%d", forks, kills)
	}
}

func TestCompileRejectsShortTripLoops(t *testing.T) {
	// 4-entry inner work loop called many times: trip count 2 — rejected.
	inner := ir.NewFuncBuilder("work", 1)
	j, c, z, s := inner.NewReg(), inner.NewReg(), inner.NewReg(), inner.NewReg()
	inner.Block("entry")
	inner.Mov(j, inner.Param(0))
	inner.MovI(z, 0)
	inner.MovI(s, 0)
	inner.Jmp("head")
	inner.Block("head")
	inner.ALU(ir.CmpGT, c, j, z)
	inner.Br(c, "body", "exit")
	inner.Block("body")
	inner.ALU(ir.Add, s, s, j)
	inner.AddI(j, j, -1)
	inner.Jmp("head")
	inner.Block("exit")
	inner.Ret(s)

	b := ir.NewFuncBuilder("main", 0)
	i, c2, z2, s2, two := b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg()
	b.Block("entry")
	b.MovI(i, 200)
	b.MovI(z2, 0)
	b.MovI(s2, 0)
	b.MovI(two, 2)
	b.Jmp("head")
	b.Block("head")
	b.ALU(ir.CmpGT, c2, i, z2)
	b.Br(c2, "body", "exit")
	b.Block("body")
	b.Call(c2, "work", two)
	b.ALU(ir.Add, s2, s2, c2)
	b.AddI(i, i, -1)
	b.Jmp("head")
	b.Block("exit")
	b.Ret(s2)
	p := ir.NewProgramBuilder("main").AddFunc(b.Done()).AddFunc(inner.Done()).Done()

	opts := DefaultOptions()
	opts.UnrollFactor = 0 // keep shapes intact for the assertion
	res, err := Compile(p, opts)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	for _, l := range res.Loops {
		if l.Key.Func == "work" && l.Selected {
			t.Errorf("short-trip inner loop selected: %+v", l)
		}
	}
	r1, r2 := run(t, p), run(t, res.Program)
	if r1.Ret != r2.Ret {
		t.Errorf("ret %d vs %d", r1.Ret, r2.Ret)
	}
}

func TestCompileUnrollsSmallLoops(t *testing.T) {
	p := buildHotLoopProgram(400, 0) // tiny body: unroll candidate
	opts := DefaultOptions()
	res, err := Compile(p, opts)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	found := false
	for _, l := range res.Loops {
		if l.Unrolled >= 2 {
			found = true
		}
	}
	if !found {
		t.Error("tiny-body hot loop was not unrolled")
	}
	r1, r2 := run(t, p), run(t, res.Program)
	if r1.Ret != r2.Ret || r1.MemChecksum != r2.MemChecksum {
		t.Errorf("unrolled+transformed program diverges")
	}
}

func TestCompileConflictResolution(t *testing.T) {
	// Outer hot loop calls leaf() which itself contains a hot loop. Only
	// one of the two may be selected.
	leaf := ir.NewFuncBuilder("leaf", 1)
	j, c, z, s := leaf.NewReg(), leaf.NewReg(), leaf.NewReg(), leaf.NewReg()
	pads := make([]ir.Reg, 10)
	for k := range pads {
		pads[k] = leaf.NewReg()
	}
	leaf.Block("entry")
	leaf.Mov(j, leaf.Param(0))
	leaf.MovI(z, 0)
	leaf.MovI(s, 0)
	for k := range pads {
		leaf.MovI(pads[k], 0)
	}
	leaf.Jmp("lhead")
	leaf.Block("lhead")
	leaf.ALU(ir.CmpGT, c, j, z)
	leaf.Br(c, "lbody", "lexit")
	leaf.Block("lbody")
	for k := range pads {
		leaf.MulI(pads[k], j, int64(k+2))
		leaf.ALU(ir.Xor, s, s, pads[k])
	}
	leaf.ALU(ir.Add, s, s, j)
	leaf.AddI(j, j, -1)
	leaf.Jmp("lhead")
	leaf.Block("lexit")
	leaf.Ret(s)

	b := ir.NewFuncBuilder("main", 0)
	i, c2, z2, s2, n := b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg()
	b.Block("entry")
	b.MovI(i, 60)
	b.MovI(z2, 0)
	b.MovI(s2, 0)
	b.MovI(n, 40)
	b.Jmp("head")
	b.Block("head")
	b.ALU(ir.CmpGT, c2, i, z2)
	b.Br(c2, "body", "exit")
	b.Block("body")
	b.Call(c2, "leaf", n)
	b.ALU(ir.Add, s2, s2, c2)
	b.AddI(i, i, -1)
	b.Jmp("head")
	b.Block("exit")
	b.Ret(s2)
	p := ir.NewProgramBuilder("main").AddFunc(b.Done()).AddFunc(leaf.Done()).Done()

	res, err := Compile(p, DefaultOptions())
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	mainSel, leafSel := false, false
	for _, l := range res.Loops {
		if l.Selected && l.Key.Func == "main" {
			mainSel = true
		}
		if l.Selected && l.Key.Func == "leaf" {
			leafSel = true
		}
	}
	if mainSel && leafSel {
		t.Error("both nested loops selected: inner spt_kill would break outer speculation")
	}
	if !mainSel && !leafSel {
		t.Error("neither loop selected")
	}
	r1, r2 := run(t, p), run(t, res.Program)
	if r1.Ret != r2.Ret {
		t.Errorf("ret %d vs %d", r1.Ret, r2.Ret)
	}
}

func TestCompileMultipleLoopsOneFunction(t *testing.T) {
	// Two sequential hot loops in one function: both should be selected and
	// transformed without clobbering each other.
	b := ir.NewFuncBuilder("main", 0)
	i, c, z, s := b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg()
	pads := make([]ir.Reg, 12)
	for k := range pads {
		pads[k] = b.NewReg()
	}
	b.Block("entry")
	b.MovI(z, 0)
	b.MovI(s, 0)
	for k := range pads {
		b.MovI(pads[k], 0)
	}
	b.MovI(i, 150)
	b.Jmp("head1")
	b.Block("head1")
	b.ALU(ir.CmpGT, c, i, z)
	b.Br(c, "body1", "mid")
	b.Block("body1")
	for k := range pads {
		b.MulI(pads[k], i, int64(k+2))
		b.ALU(ir.Xor, s, s, pads[k])
	}
	b.ALU(ir.Add, s, s, i)
	b.AddI(i, i, -1)
	b.Jmp("head1")
	b.Block("mid")
	b.MovI(i, 130)
	b.Jmp("head2")
	b.Block("head2")
	b.ALU(ir.CmpGT, c, i, z)
	b.Br(c, "body2", "exit")
	b.Block("body2")
	for k := range pads {
		b.MulI(pads[k], i, int64(k+5))
		b.ALU(ir.Xor, s, s, pads[k])
	}
	b.ALU(ir.Sub, s, s, i)
	b.AddI(i, i, -2)
	b.Jmp("head2")
	b.Block("exit")
	b.Ret(s)
	p := ir.NewProgramBuilder("main").AddFunc(b.Done()).Done()

	res, err := Compile(p, DefaultOptions())
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	sel := res.SelectedLoops()
	if len(sel) != 2 {
		for _, l := range res.Loops {
			t.Logf("loop %v: selected=%v reason=%q est=%.2f", l.Key, l.Selected, l.Reason, l.EstSpeedup)
		}
		t.Fatalf("selected %d loops, want 2", len(sel))
	}
	r1, r2 := run(t, p), run(t, res.Program)
	if r1.Ret != r2.Ret || r1.MemChecksum != r2.MemChecksum {
		t.Errorf("ret %d vs %d", r1.Ret, r2.Ret)
	}
}

func TestCompileLeavesInputIntact(t *testing.T) {
	p := buildHotLoopProgram(100, 10)
	before := p.Disasm()
	if _, err := Compile(p, DefaultOptions()); err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if p.Disasm() != before {
		t.Error("Compile mutated its input program")
	}
}

func TestReportRoundTrip(t *testing.T) {
	p := buildHotLoopProgram(300, 20)
	res, err := Compile(p, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteReport(&buf, res); err != nil {
		t.Fatal(err)
	}
	loops, err := ReadReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(loops) != len(res.Loops) {
		t.Fatalf("round trip lost loops: %d vs %d", len(loops), len(res.Loops))
	}
	for i := range loops {
		if loops[i].Key != res.Loops[i].Key || loops[i].Selected != res.Loops[i].Selected {
			t.Errorf("loop %d diverged: %+v vs %+v", i, loops[i], res.Loops[i])
		}
	}
	// Version mismatch is rejected.
	bad := strings.Replace(buf.String(), `"version": 1`, `"version": 99`, 1)
	if _, err := ReadReport(strings.NewReader(bad)); err == nil {
		t.Error("wrong version accepted")
	}
	if _, err := ReadReport(strings.NewReader("not json")); err == nil {
		t.Error("garbage accepted")
	}
}
