package guard

import (
	"repro/internal/arch"
	"repro/internal/cache"
	"repro/internal/trace"
)

// Injector perturbs a trace-event stream on its way from the interpreter to
// the SPT engine. Each Every-field enables one fault mode: every Nth
// matching event is dropped or corrupted (0 disables the mode). The
// perturbations are deterministic functions of the event counter and Seed,
// so a failing combination reproduces exactly.
//
// The point of the injector is negative testing: the engine downstream must
// degrade gracefully — return a structured error (arch.ErrCorruptTrace) or
// produce a correct-but-different timing result — and must never panic or
// alter architectural results, which the interpreter alone defines.
type Injector struct {
	DropEvery        int64 // drop every Nth event entirely
	CorruptValEvery  int64 // flip bits in Val of every Nth event
	CorruptAddrEvery int64 // flip bits in Addr of every Nth event
	CorruptMetaEvery int64 // clobber Func/ID coordinates of every Nth event
	TruncateSnaps    bool  // halve every fork snapshot
	CorruptSnaps     bool  // flip bits in every fork snapshot
	Seed             uint64

	// Counters of applied faults, for test assertions that the injector
	// actually fired.
	Dropped   int64
	Corrupted int64

	n int64
}

// Wrap returns a handler that perturbs events before forwarding to h.
func (inj *Injector) Wrap(h trace.Handler) trace.Handler {
	return trace.HandlerFunc(func(ev *trace.Event) {
		inj.n++
		n := inj.n
		if inj.DropEvery > 0 && n%inj.DropEvery == 0 {
			inj.Dropped++
			return
		}
		cp := *ev
		if ev.Snapshot != nil {
			cp.Snapshot = append([]int64(nil), ev.Snapshot...)
		}
		mut := false
		mix := func(k uint64) int64 { return int64(splitmix(inj.Seed ^ uint64(n)*0x9E37 ^ k)) }
		if inj.CorruptValEvery > 0 && n%inj.CorruptValEvery == 0 {
			cp.Val ^= mix(1)
			mut = true
		}
		if inj.CorruptAddrEvery > 0 && n%inj.CorruptAddrEvery == 0 {
			cp.Addr ^= mix(2) & 0xFFFF
			mut = true
		}
		if inj.CorruptMetaEvery > 0 && n%inj.CorruptMetaEvery == 0 {
			cp.Func = int32(mix(3))
			cp.ID = int32(mix(4))
			mut = true
		}
		if cp.Snapshot != nil {
			if inj.TruncateSnaps {
				cp.Snapshot = cp.Snapshot[:len(cp.Snapshot)/2]
				mut = true
			}
			if inj.CorruptSnaps {
				for i := range cp.Snapshot {
					cp.Snapshot[i] ^= mix(uint64(5 + i))
				}
				mut = true
			}
		}
		if mut {
			inj.Corrupted++
		}
		h.Event(&cp)
	})
}

// Middleware adapts the injector to arch.Machine.SetTraceMiddleware.
func (inj *Injector) Middleware() func(trace.Handler) trace.Handler {
	return inj.Wrap
}

// splitmix is the splitmix64 output function: a cheap, high-quality,
// deterministic bit mixer.
func splitmix(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// NamedConfig pairs a degenerate machine configuration with a label for
// matrix-style fault suites.
type NamedConfig struct {
	Name string
	Cfg  arch.Config
}

// FaultConfigs returns hardware configurations at the edges of the design
// space: degenerate SRB and lookahead windows, minimal replay width, zero
// overheads, both recovery and register-check variants, and caches that are
// all-hit or pathologically tiny. Every one of them must simulate without
// panicking and without changing architectural results.
func FaultConfigs() []NamedConfig {
	mk := func(name string, mut func(*arch.Config)) NamedConfig {
		c := arch.DefaultConfig()
		mut(&c)
		return NamedConfig{Name: name, Cfg: c}
	}
	return []NamedConfig{
		mk("srb-1", func(c *arch.Config) { c.SRBSize = 1; c.Window = 2 }),
		mk("window-min", func(c *arch.Config) { c.Window = c.SRBSize + 1 }),
		mk("replay-width-1", func(c *arch.Config) { c.ReplayFetchWidth = 1; c.ReplayIssueWidth = 1 }),
		mk("zero-overheads", func(c *arch.Config) { c.RFCopyCycles = 0; c.FastCommitCycles = 0; c.BranchPenalty = 0 }),
		mk("squash-recovery", func(c *arch.Config) { c.Recovery = arch.RecoverySquash }),
		mk("update-regcheck", func(c *arch.Config) { c.RegCheck = arch.RegCheckUpdate }),
		mk("zero-latency-caches", func(c *arch.Config) {
			c.Cache.L1I.Latency = 0
			c.Cache.L1D.Latency = 0
			c.Cache.L2.Latency = 0
			c.Cache.L3.Latency = 0
			c.Cache.MemLatency = 0
		}),
		mk("saturated-tiny-caches", func(c *arch.Config) {
			tiny := cache.LevelConfig{SizeBytes: 64, Ways: 1, BlockBytes: 64, Latency: 1}
			c.Cache.L1I = tiny
			c.Cache.L1D = tiny
			c.Cache.L2 = cache.LevelConfig{SizeBytes: 128, Ways: 1, BlockBytes: 64, Latency: 5}
			c.Cache.L3 = cache.LevelConfig{SizeBytes: 256, Ways: 1, BlockBytes: 128, Latency: 12}
			c.Cache.MemLatency = 500
		}),
		mk("bpred-min", func(c *arch.Config) { c.BPredEntries = 2 }),
	}
}
