package guard

import (
	"context"
	"errors"
	"testing"

	"repro/internal/arch"
	"repro/internal/compiler"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/trace"
)

func TestInjectorCounters(t *testing.T) {
	var got int64
	sink := trace.HandlerFunc(func(*trace.Event) { got++ })
	inj := &Injector{DropEvery: 3, CorruptValEvery: 5, Seed: 1}
	h := inj.Wrap(sink)
	ev := trace.Event{}
	for i := 0; i < 30; i++ {
		h.Event(&ev)
	}
	if inj.Dropped != 10 {
		t.Errorf("Dropped = %d, want 10", inj.Dropped)
	}
	if got != 20 {
		t.Errorf("forwarded = %d, want 20", got)
	}
	if inj.Corrupted == 0 {
		t.Error("no corruption recorded")
	}
}

func TestInjectorDoesNotMutateOriginal(t *testing.T) {
	inj := &Injector{CorruptValEvery: 1, CorruptSnaps: true, Seed: 7}
	h := inj.Wrap(trace.HandlerFunc(func(*trace.Event) {}))
	snap := []int64{10, 20}
	ev := trace.Event{Val: 42, Snapshot: snap}
	h.Event(&ev)
	if ev.Val != 42 || snap[0] != 10 || snap[1] != 20 {
		t.Fatal("injector mutated the producer's event")
	}
}

// compiledOracle compiles the seed's random program once for reuse across
// the fault matrix.
func compiledOracle(t *testing.T, seed uint64) *ir.Program {
	t.Helper()
	p := RandomLoopProgram(seed)
	opts := compiler.DefaultOptions()
	opts.MinIterations = 4
	opts.MinTripCount = 2
	opts.MinSpeedup = 0
	cres, err := compiler.Compile(p, opts)
	if err != nil {
		t.Fatalf("compile seed %d: %v", seed, err)
	}
	return cres.Program
}

// TestFaultMatrix is the graceful-degradation suite: every degenerate
// hardware configuration crossed with every fault-injection mode, on
// SPT-compiled random programs. The requirement is structural: a run either
// succeeds with sane statistics or returns a structured error — never a
// panic (guard.Run would report it with Panicked set), and a corrupt-trace
// abort must carry arch.ErrCorruptTrace.
func TestFaultMatrix(t *testing.T) {
	injectors := []struct {
		name string
		mk   func() *Injector
	}{
		{"clean", func() *Injector { return nil }},
		{"drop", func() *Injector { return &Injector{DropEvery: 97, Seed: 11} }},
		{"corrupt-val", func() *Injector { return &Injector{CorruptValEvery: 61, Seed: 12} }},
		{"corrupt-addr", func() *Injector { return &Injector{CorruptAddrEvery: 53, Seed: 13} }},
		{"corrupt-meta", func() *Injector { return &Injector{CorruptMetaEvery: 211, Seed: 14} }},
		{"truncate-snaps", func() *Injector { return &Injector{TruncateSnaps: true} }},
		{"corrupt-snaps", func() *Injector { return &Injector{CorruptSnaps: true, Seed: 15} }},
		{"everything", func() *Injector {
			return &Injector{DropEvery: 89, CorruptValEvery: 71, CorruptAddrEvery: 67,
				CorruptMetaEvery: 331, TruncateSnaps: true, CorruptSnaps: true, Seed: 16}
		}},
	}
	seeds := []uint64{3, 17}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		prog := compiledOracle(t, seed)
		for _, nc := range FaultConfigs() {
			for _, im := range injectors {
				name := nc.Name + "/" + im.name
				t.Run(name, func(t *testing.T) {
					inj := im.mk()
					st, err := SimulateUnderFault(context.Background(), name, prog, nc.Cfg, inj)
					if err != nil {
						var se *StageError
						if !errors.As(err, &se) {
							t.Fatalf("unstructured error: %v", err)
						}
						if se.Panicked {
							t.Fatalf("panic escaped as error:\n%s\n%s", se.Err, se.Stack)
						}
						if im.name == "corrupt-meta" || im.name == "everything" {
							if !errors.Is(err, arch.ErrCorruptTrace) {
								t.Fatalf("meta corruption: err = %v, want ErrCorruptTrace", err)
							}
						}
						return
					}
					if st.Cycles <= 0 || st.Instrs <= 0 {
						t.Fatalf("degenerate stats: %+v", st)
					}
				})
			}
		}
	}
}

// TestFaultsNeverChangeArchitecturalState: perturbations reach only the
// timing engine, never the architectural interpreter — the simulated
// program's sequential result is identical with and without injection.
func TestFaultsNeverChangeArchitecturalState(t *testing.T) {
	prog := compiledOracle(t, 5)
	lp, err := interp.Load(prog)
	if err != nil {
		t.Fatal(err)
	}
	want, err := interp.New(lp).Run()
	if err != nil {
		t.Fatal(err)
	}
	inj := &Injector{DropEvery: 31, CorruptValEvery: 17, TruncateSnaps: true, Seed: 9}
	_, _ = SimulateUnderFault(context.Background(), "arch-state", prog, arch.DefaultConfig(), inj)
	got, err := interp.New(lp).Run()
	if err != nil {
		t.Fatal(err)
	}
	if got.Ret != want.Ret || got.MemChecksum != want.MemChecksum {
		t.Fatalf("architectural state diverged: %+v vs %+v", got, want)
	}
}
