// Package guard is the robustness layer around the SPT pipeline: it
// isolates panics into structured stage errors, imposes wall-clock and
// step/cycle budgets on compilation and simulation, and hosts the fault
// injector and differential stress oracle that the test suite uses to
// demonstrate graceful degradation. Nothing in this package knows about
// benchmarks or figures — the harness composes it.
package guard

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"time"

	"repro/internal/arch"
	"repro/internal/interp"
)

// Stage names used across the harness and the cmd binaries. They are plain
// strings (not an enum) so ad-hoc pipelines can introduce their own.
const (
	StageCompile  = "compile"
	StageBaseline = "baseline"
	StageSimulate = "simulate"
	StageProfile  = "profile"
	StageOracle   = "oracle"
)

// StageError is the structured failure record of one guarded stage: which
// benchmark, which stage, what went wrong, and — when the failure was a
// recovered panic — the stack of the panicking goroutine.
type StageError struct {
	Benchmark string
	Stage     string
	Err       error
	Panicked  bool
	Stack     []byte // non-nil only when Panicked
}

// Error implements the error interface.
func (e *StageError) Error() string {
	kind := ""
	if e.Panicked {
		kind = "panic: "
	}
	if e.Benchmark == "" {
		return fmt.Sprintf("%s: %s%v", e.Stage, kind, e.Err)
	}
	return fmt.Sprintf("%s/%s: %s%v", e.Benchmark, e.Stage, kind, e.Err)
}

// Unwrap exposes the underlying cause to errors.Is / errors.As.
func (e *StageError) Unwrap() error { return e.Err }

// Run executes fn with panic isolation: a panic inside fn is recovered and
// converted into a *StageError carrying the stack; an ordinary error is
// wrapped into a *StageError (unless it already is one for the same
// benchmark, which passes through unchanged). A nil return means fn
// completed normally.
func Run(benchmark, stage string, fn func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &StageError{
				Benchmark: benchmark,
				Stage:     stage,
				Err:       fmt.Errorf("panic: %v", r),
				Panicked:  true,
				Stack:     debug.Stack(),
			}
		}
	}()
	if e := fn(); e != nil {
		var se *StageError
		if errors.As(e, &se) && se.Benchmark == benchmark {
			return e
		}
		return &StageError{Benchmark: benchmark, Stage: stage, Err: e}
	}
	return nil
}

// Budget bounds one guarded pipeline: wall-clock time, interpreter steps,
// simulator cycles, and how many times a budget-exceeded stage may be
// retried at reduced scale. The zero value imposes no bounds.
type Budget struct {
	Timeout time.Duration // wall-clock deadline per stage (0 = none)
	Steps   int64         // dynamic instruction budget (0 = none)
	Cycles  int64         // simulated cycle budget (0 = none)
	Retries int           // bounded retries at reduced scale (harness policy)
}

// Context derives a context enforcing the wall-clock part of the budget.
// The returned cancel must be called to release the timer.
func (b Budget) Context(parent context.Context) (context.Context, context.CancelFunc) {
	if parent == nil {
		parent = context.Background()
	}
	if b.Timeout <= 0 {
		return context.WithCancel(parent)
	}
	return context.WithTimeout(parent, b.Timeout)
}

// Apply installs the step/cycle parts of the budget into a machine config.
func (b Budget) Apply(cfg arch.Config) arch.Config {
	if b.Steps > 0 {
		cfg.StepLimit = b.Steps
	}
	if b.Cycles > 0 {
		cfg.CycleLimit = b.Cycles
	}
	return cfg
}

// Exceeded reports whether err is a budget-exhaustion failure — a step or
// cycle limit, or a context deadline/cancellation — as opposed to a
// structural failure. The harness retries only Exceeded errors at reduced
// scale; structural failures are reported as-is.
func Exceeded(err error) bool {
	return err != nil && (errors.Is(err, interp.ErrStepLimit) ||
		errors.Is(err, arch.ErrCycleLimit) ||
		errors.Is(err, context.DeadlineExceeded) ||
		errors.Is(err, context.Canceled))
}
