package guard

import (
	"context"
	"fmt"

	"repro/internal/arch"
	"repro/internal/compiler"
	"repro/internal/interp"
	"repro/internal/ir"
)

// rng is a splitmix64 generator: deterministic across platforms, so oracle
// seeds identify programs exactly.
type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	r.s += 0x9E3779B97F4A7C15
	return splitmix(r.s)
}

func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// oracleGlobalSize is the word size of the shared array every random
// program reads and writes; indices are masked to it, so any generated
// address is in bounds.
const oracleGlobalSize = 64

// RandomLoopProgram deterministically generates a counted-loop program from
// seed: a main loop over a masked global array with a random straight-line
// body (trap-free ALU ops only), optionally calling a small loopy helper.
// The loop counter and addressing registers are never destinations of the
// random body, so every generated program terminates. Generated programs
// always pass ir.Validate.
func RandomLoopProgram(seed uint64) *ir.Program {
	r := &rng{s: seed}
	trip := int64(24 + r.intn(64))
	nScratch := 3 + r.intn(3)
	nBodyOps := 3 + r.intn(6)
	withCall := r.intn(2) == 1

	b := ir.NewFuncBuilder("main", 0)
	base := b.NewReg()
	mask := b.NewReg()
	i := b.NewReg()
	c := b.NewReg()
	idx := b.NewReg()
	addr := b.NewReg()
	zero := b.NewReg()
	scratch := make([]ir.Reg, nScratch)
	for k := range scratch {
		scratch[k] = b.NewReg()
	}

	b.Block("entry")
	b.GAddr(base, "data")
	b.MovI(mask, oracleGlobalSize-1)
	b.MovI(zero, 0)
	for k, s := range scratch {
		b.MovI(s, int64(r.intn(97))-48*int64(k%2))
	}
	b.MovI(i, trip)
	b.Jmp("head")

	b.Block("head")
	b.ALU(ir.CmpGT, c, i, zero)
	b.Br(c, "body", "exit")

	b.Block("body")
	// Load data[i & mask] into a scratch register.
	b.ALU(ir.And, idx, i, mask)
	b.ALU(ir.Add, addr, base, idx)
	b.Load(scratch[0], addr, 0)
	// Random trap-free ALU soup over the scratch registers; sources may
	// include the counter, destinations never do.
	ops := []ir.Op{ir.Add, ir.Sub, ir.Mul, ir.Xor, ir.And, ir.Or,
		ir.Shl, ir.Shr, ir.Div, ir.Rem, ir.CmpLT, ir.CmpNE}
	srcs := append(append([]ir.Reg(nil), scratch...), i, idx)
	for k := 0; k < nBodyOps; k++ {
		op := ops[r.intn(len(ops))]
		dst := scratch[r.intn(nScratch)]
		a := srcs[r.intn(len(srcs))]
		s2 := srcs[r.intn(len(srcs))]
		b.ALU(op, dst, a, s2)
	}
	if withCall {
		b.Call(scratch[1%nScratch], "helper", scratch[0])
	}
	// Store a scratch register back to data[(i+delta) & mask].
	b.AddI(idx, i, int64(r.intn(7)))
	b.ALU(ir.And, idx, idx, mask)
	b.ALU(ir.Add, addr, base, idx)
	b.Store(addr, 0, scratch[r.intn(nScratch)])
	b.AddI(i, i, -1)
	b.Jmp("head")

	b.Block("exit")
	b.Ret(scratch[0])
	main := b.Done()

	// helper(x): t = 0; j = x & 15; while j > 0 { t = t*3 + j; j-- }; ret t.
	hb := ir.NewFuncBuilder("helper", 1)
	x := hb.Param(0)
	t := hb.NewReg()
	j := hb.NewReg()
	m := hb.NewReg()
	hz := hb.NewReg()
	hc := hb.NewReg()
	hb.Block("entry")
	hb.MovI(t, 0)
	hb.MovI(m, 15)
	hb.MovI(hz, 0)
	hb.ALU(ir.And, j, x, m)
	hb.Jmp("head")
	hb.Block("head")
	hb.ALU(ir.CmpGT, hc, j, hz)
	hb.Br(hc, "body", "exit")
	hb.Block("body")
	hb.MulI(t, t, 3)
	hb.ALU(ir.Add, t, t, j)
	hb.AddI(j, j, -1)
	hb.Jmp("head")
	hb.Block("exit")
	hb.Ret(t)
	helper := hb.Done()

	init := make([]int64, oracleGlobalSize)
	for k := range init {
		init[k] = int64(splitmix(seed^uint64(k))) % 1000
	}
	return ir.NewProgramBuilder("main").
		AddFunc(main).AddFunc(helper).
		AddGlobal("data", oracleGlobalSize, init...).
		Done()
}

// OracleResult is the outcome of one differential check.
type OracleResult struct {
	Seed     uint64
	Orig     interp.Result // sequential ground truth of the generated program
	Compiled interp.Result // sequential result of the SPT-compiled program
	Selected int           // SPT loops the compiler selected
}

// Diverged reports whether the compiled program's architectural behaviour
// (return value or memory-write checksum) differs from the ground truth.
func (o *OracleResult) Diverged() bool {
	return o.Orig.Ret != o.Compiled.Ret || o.Orig.MemChecksum != o.Compiled.MemChecksum
}

// DifferentialCheck generates the seed's program, compiles it through the
// full SPT pipeline, and runs both versions under the sequential
// interpreter. The compiled program must reproduce the original's return
// value and memory checksum exactly — SptFork/SptKill are architectural
// no-ops, so any divergence is a compiler bug. Both the compilation and the
// runs are panic-isolated.
func DifferentialCheck(ctx context.Context, seed uint64) (*OracleResult, error) {
	out := &OracleResult{Seed: seed}
	name := fmt.Sprintf("oracle-%d", seed)
	err := Run(name, StageOracle, func() error {
		p := RandomLoopProgram(seed)
		lp, err := interp.Load(p)
		if err != nil {
			return fmt.Errorf("load original: %w", err)
		}
		m := interp.New(lp)
		m.SetContext(ctx)
		out.Orig, err = m.Run()
		if err != nil {
			return fmt.Errorf("run original: %w", err)
		}

		opts := compiler.DefaultOptions()
		opts.MinIterations = 4
		opts.MinTripCount = 2
		opts.MinSpeedup = 0 // select aggressively: the oracle wants transformed code
		cres, err := compiler.CompileContext(ctx, p, opts)
		if err != nil {
			return fmt.Errorf("compile: %w", err)
		}
		out.Selected = len(cres.SelectedLoops())

		clp, err := interp.Load(cres.Program)
		if err != nil {
			return fmt.Errorf("load compiled: %w", err)
		}
		cm := interp.New(clp)
		cm.SetContext(ctx)
		out.Compiled, err = cm.Run()
		if err != nil {
			return fmt.Errorf("run compiled: %w", err)
		}
		if out.Diverged() {
			return fmt.Errorf("divergence: orig (ret=%d sum=%x) vs compiled (ret=%d sum=%x)",
				out.Orig.Ret, out.Orig.MemChecksum, out.Compiled.Ret, out.Compiled.MemChecksum)
		}
		return nil
	})
	return out, err
}

// SimulateUnderFault runs program p on the SPT machine under cfg with an
// optional fault injector interposed on the trace, inside a panic-isolation
// wrapper. It returns the run statistics when the engine completed, or the
// engine's structured error; a panic anywhere in the stack comes back as a
// *StageError with Panicked set. Completed runs are sanity-checked: a
// simulation that "succeeds" with impossible statistics is reported as an
// error, not silently accepted.
func SimulateUnderFault(ctx context.Context, name string, p *ir.Program, cfg arch.Config, inj *Injector) (*arch.RunStats, error) {
	var stats *arch.RunStats
	err := Run(name, StageSimulate, func() error {
		lp, err := interp.Load(p)
		if err != nil {
			return err
		}
		m := arch.NewMachine(lp, cfg)
		if inj != nil {
			m.SetTraceMiddleware(inj.Middleware())
		}
		st, err := m.RunContext(ctx)
		if err != nil {
			return err
		}
		switch {
		case st.Cycles <= 0:
			return fmt.Errorf("degenerate result: %d cycles", st.Cycles)
		case st.Instrs <= 0:
			return fmt.Errorf("degenerate result: %d instructions", st.Instrs)
		case st.MisspecInstrs > st.SpecInstrs:
			return fmt.Errorf("inconsistent result: %d misspeculated of %d speculative instructions",
				st.MisspecInstrs, st.SpecInstrs)
		}
		stats = st
		return nil
	})
	return stats, err
}
