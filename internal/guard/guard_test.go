package guard

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/arch"
	"repro/internal/interp"
)

func TestRunConvertsPanic(t *testing.T) {
	err := Run("gzip", StageCompile, func() error {
		panic("boom")
	})
	var se *StageError
	if !errors.As(err, &se) {
		t.Fatalf("err = %T, want *StageError", err)
	}
	if !se.Panicked {
		t.Error("Panicked not set")
	}
	if se.Benchmark != "gzip" || se.Stage != StageCompile {
		t.Errorf("identity = %s/%s", se.Benchmark, se.Stage)
	}
	if len(se.Stack) == 0 || !bytes.Contains(se.Stack, []byte("goroutine")) {
		t.Error("stack trace missing")
	}
	if se.Error() == "" {
		t.Error("empty Error()")
	}
}

func TestRunConvertsRuntimePanic(t *testing.T) {
	err := Run("vpr", StageSimulate, func() error {
		var xs []int
		_ = xs[3] // index out of range
		return nil
	})
	var se *StageError
	if !errors.As(err, &se) || !se.Panicked {
		t.Fatalf("runtime panic not converted: %v", err)
	}
}

func TestRunWrapsErrors(t *testing.T) {
	sentinel := errors.New("stage failed")
	err := Run("mcf", StageBaseline, func() error { return sentinel })
	var se *StageError
	if !errors.As(err, &se) {
		t.Fatalf("err = %T, want *StageError", err)
	}
	if se.Panicked {
		t.Error("ordinary error marked as panic")
	}
	if !errors.Is(err, sentinel) {
		t.Error("cause not reachable through Unwrap")
	}
	// An already-structured error for the same benchmark passes through.
	again := Run("mcf", StageSimulate, func() error { return err })
	if again != err {
		t.Errorf("StageError rewrapped: %v", again)
	}
	if e := Run("mcf", StageSimulate, func() error { return nil }); e != nil {
		t.Errorf("nil return wrapped: %v", e)
	}
}

func TestBudgetContext(t *testing.T) {
	ctx, cancel := Budget{Timeout: time.Nanosecond}.Context(context.Background())
	defer cancel()
	<-ctx.Done()
	if !errors.Is(ctx.Err(), context.DeadlineExceeded) {
		t.Fatalf("ctx.Err() = %v", ctx.Err())
	}
	// Zero timeout imposes no deadline.
	ctx2, cancel2 := Budget{}.Context(nil)
	defer cancel2()
	if _, has := ctx2.Deadline(); has {
		t.Error("zero budget must not set a deadline")
	}
}

func TestBudgetApply(t *testing.T) {
	cfg := Budget{Steps: 123, Cycles: 456}.Apply(arch.DefaultConfig())
	if cfg.StepLimit != 123 || cfg.CycleLimit != 456 {
		t.Fatalf("Apply: StepLimit=%d CycleLimit=%d", cfg.StepLimit, cfg.CycleLimit)
	}
	cfg = Budget{}.Apply(cfg)
	if cfg.StepLimit != 123 || cfg.CycleLimit != 456 {
		t.Error("zero budget must not clobber existing limits")
	}
}

func TestExceeded(t *testing.T) {
	for _, err := range []error{
		interp.ErrStepLimit,
		arch.ErrCycleLimit,
		context.DeadlineExceeded,
		context.Canceled,
		fmt.Errorf("wrapped: %w", interp.ErrStepLimit),
		&StageError{Benchmark: "b", Stage: "s", Err: arch.ErrCycleLimit},
	} {
		if !Exceeded(err) {
			t.Errorf("Exceeded(%v) = false", err)
		}
	}
	for _, err := range []error{nil, errors.New("structural"), arch.ErrCorruptTrace} {
		if Exceeded(err) {
			t.Errorf("Exceeded(%v) = true", err)
		}
	}
}
