package guard

import (
	"context"
	"testing"
	"time"
)

func TestRandomLoopProgramDeterministic(t *testing.T) {
	for _, seed := range []uint64{0, 1, 42} {
		a := RandomLoopProgram(seed).Disasm()
		b := RandomLoopProgram(seed).Disasm()
		if a != b {
			t.Fatalf("seed %d not deterministic", seed)
		}
	}
	if RandomLoopProgram(1).Disasm() == RandomLoopProgram(2).Disasm() {
		t.Error("distinct seeds produced identical programs")
	}
}

func TestRandomLoopProgramValidates(t *testing.T) {
	for seed := uint64(0); seed < 32; seed++ {
		if err := RandomLoopProgram(seed).Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

// TestDifferentialOracle: randomized loop programs through the full
// compile pipeline must reproduce the sequential interpreter's return value
// and memory checksum exactly.
func TestDifferentialOracle(t *testing.T) {
	n := uint64(12)
	if testing.Short() {
		n = 4
	}
	selected := 0
	for seed := uint64(1); seed <= n; seed++ {
		res, err := DifferentialCheck(context.Background(), seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Diverged() {
			t.Fatalf("seed %d diverged without error: %+v", seed, res)
		}
		selected += res.Selected
	}
	// The oracle is only meaningful if the compiler actually transforms some
	// of the generated programs.
	if selected == 0 {
		t.Error("no generated program ever selected an SPT loop")
	}
}

// TestDifferentialCheckHonoursDeadline: an expired context aborts the
// oracle with a budget-exhaustion error rather than hanging.
func TestDifferentialCheckHonoursDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	time.Sleep(time.Millisecond)
	_, err := DifferentialCheck(ctx, 1)
	if err == nil {
		t.Fatal("expected deadline error")
	}
	if !Exceeded(err) {
		t.Fatalf("err = %v, want a budget-exhaustion error", err)
	}
}
