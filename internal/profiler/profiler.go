// Package profiler runs an IR program under the sequential interpreter and
// gathers the annotations the SPT compiler's cost-driven framework needs
// (Figure 4 of the paper): reach counts per loop-body instruction,
// cross-iteration register and memory dependence frequencies, iteration-
// start value patterns for software value prediction, trip counts, and the
// loop coverage statistics behind Figures 6 and 7.
package profiler

import (
	"context"

	"repro/internal/cfg"
	"repro/internal/ddg"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/trace"
)

// LoopKey stably identifies a loop by function name and header label; it
// survives program cloning and transformation.
type LoopKey struct {
	Func   string
	Header string
}

// LoopProfile aggregates the runtime behaviour of one static loop.
type LoopProfile struct {
	Key LoopKey
	// Parent is the key of the dynamically enclosing loop, if any — the
	// loop (possibly in a calling function) that was active when this one
	// was first entered. Coverage accounting uses it to avoid double
	// counting nests.
	Parent *LoopKey

	Entries    int64 // times the loop was entered from outside
	Iterations int64 // body executions (start-point arrivals for candidates)

	InclInstrs int64 // dynamic instructions inside the loop, callees included
	InclCycles int64 // latency-weighted inclusive work

	// Exec counts executions of each body instruction (own frame only);
	// Exec[id]/Iterations is the instruction's reach probability.
	Exec map[int]int64

	// RegSamples counts iteration boundaries where register comparison was
	// possible; RegChange[r] counts boundaries at which r's iteration-start
	// value differed from the previous iteration's (value-based dependence
	// probability); RegWritten[r] counts iterations that wrote r at all
	// (update-based probability).
	RegSamples int64
	RegChange  map[ir.Reg]int64
	RegWritten map[ir.Reg]int64

	// MemDep counts, for (store-context, load-context) instruction pairs of
	// the loop body, how often the load read an address the previous
	// iteration stored to — the memory violation-candidate probabilities.
	// Contexts are body instruction ids; stores/loads performed inside
	// callees are attributed to the Call instruction.
	MemDep map[[2]int]int64

	// Values holds iteration-start value patterns for registers, feeding
	// software value prediction.
	Values map[ir.Reg]*ValueStats

	// CalleeCycles attributes latency-weighted work done inside callees to
	// the body Call instruction that entered them; CalleeCycles[id]/Exec[id]
	// is the average callee cost of call site id.
	CalleeCycles map[int]int64
}

// TripCount returns the average number of iterations per entry.
func (lp *LoopProfile) TripCount() float64 {
	if lp.Entries == 0 {
		return 0
	}
	return float64(lp.Iterations) / float64(lp.Entries)
}

// BodySize returns the average inclusive dynamic instructions per iteration.
func (lp *LoopProfile) BodySize() float64 {
	if lp.Iterations == 0 {
		return 0
	}
	return float64(lp.InclInstrs) / float64(lp.Iterations)
}

// BodyCycles returns the average inclusive latency-weighted work per
// iteration.
func (lp *LoopProfile) BodyCycles() float64 {
	if lp.Iterations == 0 {
		return 0
	}
	return float64(lp.InclCycles) / float64(lp.Iterations)
}

// ReachProb returns the probability that body instruction id executes in an
// iteration.
func (lp *LoopProfile) ReachProb(id int) float64 {
	if lp.Iterations == 0 {
		return 0
	}
	p := float64(lp.Exec[id]) / float64(lp.Iterations)
	if p > 1 {
		p = 1
	}
	return p
}

// RegChangeProb returns the value-based carried dependence probability of
// register r: the fraction of iterations that changed r's value.
func (lp *LoopProfile) RegChangeProb(r ir.Reg) float64 {
	if lp.RegSamples == 0 {
		return 0
	}
	return float64(lp.RegChange[r]) / float64(lp.RegSamples)
}

// RegWriteProb returns the update-based carried dependence probability of
// register r.
func (lp *LoopProfile) RegWriteProb(r ir.Reg) float64 {
	if lp.Iterations == 0 {
		return 0
	}
	return float64(lp.RegWritten[r]) / float64(lp.Iterations)
}

// CallSiteCycles returns the average callee work per execution of the body
// call instruction id.
func (lp *LoopProfile) CallSiteCycles(id int) float64 {
	n := lp.Exec[id]
	if n == 0 {
		return 0
	}
	return float64(lp.CalleeCycles[id]) / float64(n)
}

// MemDepProb returns the probability per iteration of the given
// (store-context, load-context) carried memory dependence.
func (lp *LoopProfile) MemDepProb(store, load int) float64 {
	if lp.Iterations == 0 {
		return 0
	}
	return float64(lp.MemDep[[2]int{store, load}]) / float64(lp.Iterations)
}

// Profile is the whole-program profiling result.
type Profile struct {
	TotalInstrs int64
	TotalCycles int64
	Loops       map[LoopKey]*LoopProfile
	Result      interp.Result
}

// Loop returns the profile of the given loop (nil if never executed).
func (p *Profile) Loop(k LoopKey) *LoopProfile { return p.Loops[k] }

// staticLoop is the per-function static description the collector consults.
type staticLoop struct {
	key        LoopKey
	header     int
	start      int // start-point block; == header for non-candidates
	startID0   int // first instruction id of the start block
	candidate  bool
	loop       *cfg.Loop
	numRegs    int
	depthIndex int // nesting position within the frame's loop chain
}

type funcStatics struct {
	f *ir.Func
	// loopsAtBlock[b] lists the loops containing block b, outermost first.
	loopsAtBlock [][]*staticLoop
	blockOf      []int32
}

// activation is one dynamic instance of a loop.
type activation struct {
	sl    *staticLoop
	prof  *LoopProfile
	frame int64
	ctx   int // last body-instruction id seen in the loop's own frame

	iter       int64
	prevSnap   []int64
	prevKnown  []bool
	snapValid  bool
	written []bool // regs written this iteration (dense; nil for non-candidates)

	// Cross-iteration store tracking. One generational map replaces the
	// classic prev/cur pair: every store is tagged with the iteration
	// generation it happened in, an iteration boundary is a single gen
	// increment, and stale entries are filtered on lookup instead of being
	// cleared (map clearing is O(capacity) and used to dominate loops with
	// many short iterations).
	stores   map[int64]storeGen // addr -> last store into it
	storeGen uint64             // generation tag of the current iteration
}

// storeGen is one remembered store: the loop-body context it came from and
// the iteration generation it belongs to. An entry is "current iteration"
// when gen matches the activation's storeGen, "previous iteration" at
// storeGen-1, and invisible otherwise.
type storeGen struct {
	ctx int
	gen uint64
}

type frameState struct {
	fi    int32
	regs  []int64
	known []bool
	acts  []*activation // loop activations opened by this frame
	prevB int32         // previous block index, -1 initially

	lastID int32 // last instruction id seen in this frame
	parent *frameState
	// retDst is the caller register that receives this frame's return
	// value (the Dst of the Call that created it), or NoReg.
	retDst ir.Reg
}

// collector implements trace.Handler.
type collector struct {
	lp      *interp.Program
	statics []*funcStatics
	prof    *Profile

	frames map[int64]*frameState
	stack  []*frameState // call stack of frames with events seen
	acts   []*activation // global activation stack (outermost first)

	// Recycled records: call-heavy traces churn through frames and loop
	// activations, so both are pooled for the lifetime of one collection.
	framePool []*frameState
	actPool   []*activation

	// One-entry lookup memo: consecutive events overwhelmingly share a
	// frame, so most Event calls skip the frames map.
	lastFrame int64
	lastFr    *frameState
}

// Collect runs the program and returns its profile. stepLimit bounds
// execution (0 means a large default).
func Collect(lp *interp.Program, stepLimit int64) (*Profile, error) {
	return CollectContext(context.Background(), lp, stepLimit)
}

// CollectContext is Collect under a cancellation/deadline context: the
// profiling run aborts with a wrapped context error when ctx is done.
func CollectContext(ctx context.Context, lp *interp.Program, stepLimit int64) (*Profile, error) {
	c := &collector{
		lp:     lp,
		prof:   &Profile{Loops: map[LoopKey]*LoopProfile{}},
		frames: map[int64]*frameState{},
	}
	c.buildStatics()
	m := interp.New(lp)
	if stepLimit > 0 {
		m.SetStepLimit(stepLimit)
	}
	m.SetContext(ctx)
	m.SetHandler(c)
	res, err := m.Run()
	if err != nil {
		return nil, err
	}
	c.prof.Result = res
	return c.prof, nil
}

func (c *collector) buildStatics() {
	p := lpIR(c.lp)
	eff := ddg.ComputeEffects(p)
	c.statics = make([]*funcStatics, len(p.Funcs))
	for fi, f := range p.Funcs {
		fs := &funcStatics{f: f, loopsAtBlock: make([][]*staticLoop, len(f.Blocks))}
		fs.blockOf = make([]int32, f.NumInstrs())
		for id := 0; id < f.NumInstrs(); id++ {
			fs.blockOf[id] = int32(f.Linear[id].Block)
		}
		g, err := cfg.Build(f)
		if err != nil {
			// No CFG -> no loop statics for this function; events in it are
			// still counted, just not attributed to loops.
			c.statics[fi] = fs
			continue
		}
		forest := cfg.FindLoops(g)
		byLoop := map[*cfg.Loop]*staticLoop{}
		for _, l := range forest.Loops {
			sl := &staticLoop{
				key:     LoopKey{Func: f.Name, Header: f.Blocks[l.Header].Label},
				header:  l.Header,
				start:   l.Header,
				loop:    l,
				numRegs: f.NumRegs,
			}
			if a := ddg.Analyze(p, f, g, l, eff); a != nil {
				sl.candidate = true
				sl.start = a.StartBlock
			} else if term := f.Blocks[l.Header].Term(); term.Op == ir.Br {
				// Non-candidate while-shaped loop: count iterations at the
				// body entry so the final exit test is not an iteration.
				t1, t2 := f.BlockIndex(term.Target), f.BlockIndex(term.Target2)
				switch {
				case l.Contains(t1) && !l.Contains(t2):
					sl.start = t1
				case l.Contains(t2) && !l.Contains(t1):
					sl.start = t2
				}
			}
			sl.startID0 = f.Blocks[sl.start].Instrs[0].ID
			byLoop[l] = sl
		}
		for b := range f.Blocks {
			// Chain of loops containing b, outermost first.
			var chain []*staticLoop
			for l := forest.InnermostAt[b]; l != nil; l = l.Parent {
				chain = append(chain, byLoop[l])
			}
			for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
				chain[i], chain[j] = chain[j], chain[i]
			}
			for d, sl := range chain {
				sl.depthIndex = d
			}
			fs.loopsAtBlock[b] = chain
		}
		c.statics[fi] = fs
	}
}

// lpIR returns the ir.Program behind a loaded program.
func lpIR(lp *interp.Program) *ir.Program { return lp.IR }

func (c *collector) loopProfile(sl *staticLoop) *LoopProfile {
	p := c.prof.Loops[sl.key]
	if p == nil {
		p = &LoopProfile{
			Key:          sl.key,
			Exec:         map[int]int64{},
			RegChange:    map[ir.Reg]int64{},
			RegWritten:   map[ir.Reg]int64{},
			MemDep:       map[[2]int]int64{},
			Values:       map[ir.Reg]*ValueStats{},
			CalleeCycles: map[int]int64{},
		}
		c.prof.Loops[sl.key] = p
	}
	return p
}

// Event implements trace.Handler.
func (c *collector) Event(ev *trace.Event) {
	in := c.lp.InstrAt(ev.Func, ev.ID)
	lat := int64(in.Op.Latency())
	c.prof.TotalInstrs++
	c.prof.TotalCycles += lat

	var fr *frameState
	if c.lastFr != nil && c.lastFrame == ev.Frame {
		fr = c.lastFr
	} else {
		fr = c.frames[ev.Frame]
	}
	if fr == nil {
		fs := c.statics[ev.Func]
		fr = c.grabFrame(ev.Func, fs.f.NumRegs)
		// Link to the caller so the Call's destination register can be
		// updated when this frame returns (the Call event precedes the
		// callee's events and cannot carry the return value itself).
		if len(c.stack) > 0 {
			parent := c.stack[len(c.stack)-1]
			pin := c.statics[parent.fi].f.InstrByID(int(parent.lastID))
			if pin.Op == ir.Call {
				fr.parent = parent
				fr.retDst = pin.Dst
			}
		}
		c.frames[ev.Frame] = fr
		c.stack = append(c.stack, fr)
	}
	c.lastFrame, c.lastFr = ev.Frame, fr
	fr.lastID = ev.ID
	fs := c.statics[ev.Func]
	blk := fs.blockOf[ev.ID]

	// Maintain this frame's loop activations on block transitions.
	if blk != fr.prevB {
		c.syncActivations(fr, ev.Frame, int(blk))
		fr.prevB = blk
	}
	// Iteration boundary: execution of the first instruction of a loop's
	// start-point block (robust even for single-block loops, where the back
	// edge re-enters the same block).
	for _, a := range fr.acts {
		if int(ev.ID) == a.sl.startID0 {
			c.iterationBoundary(fr, a)
		}
	}

	// Attribute inclusive counts and contexts to all active activations.
	for _, a := range c.acts {
		a.prof.InclInstrs++
		a.prof.InclCycles += lat
		if a.frame == ev.Frame {
			a.ctx = int(ev.ID)
			a.prof.Exec[int(ev.ID)]++
		} else if a.ctx >= 0 {
			a.prof.CalleeCycles[a.ctx] += lat
		}
	}

	// Candidate-loop dependence tracking.
	switch in.Op {
	case ir.Store:
		for _, a := range c.acts {
			if a.sl.candidate && a.stores != nil {
				a.stores[ev.Addr] = storeGen{ctx: a.ctx, gen: a.storeGen}
			}
		}
	case ir.Load:
		for _, a := range c.acts {
			if !a.sl.candidate || a.stores == nil {
				continue
			}
			if s, ok := a.stores[ev.Addr]; ok {
				if s.gen == a.storeGen {
					continue // same-iteration dependence: always satisfied
				}
				if s.gen == a.storeGen-1 {
					a.prof.MemDep[[2]int{s.ctx, a.ctx}]++
				}
			}
		}
	case ir.Ret:
		// Propagate the return value into the caller's shadow register
		// file, then close the frame.
		if fr.parent != nil && fr.retDst != ir.NoReg {
			p := fr.parent
			p.regs[fr.retDst] = ev.Val
			p.known[fr.retDst] = true
			for _, a := range c.acts {
				if a.written != nil && int(fr.retDst) < len(a.written) && c.frames[a.frame] == p {
					a.written[fr.retDst] = true
				}
			}
		}
		c.closeFrame(fr, ev.Frame)
		delete(c.frames, ev.Frame)
		c.lastFr = nil
		c.framePool = append(c.framePool, fr)
		return
	}

	// Shadow register file for value comparisons.
	if d := in.Def(); d != ir.NoReg {
		fr.regs[d] = ev.Val
		fr.known[d] = true
		for _, a := range c.acts {
			if a.frame == ev.Frame && a.written != nil && int(d) < len(a.written) {
				a.written[d] = true
			}
		}
	}
}

// grabFrame returns a reset frame record for function fi.
func (c *collector) grabFrame(fi int32, numRegs int) *frameState {
	if n := len(c.framePool); n > 0 {
		fr := c.framePool[n-1]
		c.framePool = c.framePool[:n-1]
		fr.fi = fi
		if cap(fr.regs) < numRegs || cap(fr.known) < numRegs {
			fr.regs = make([]int64, numRegs)
			fr.known = make([]bool, numRegs)
		} else {
			fr.regs = fr.regs[:numRegs]
			clear(fr.regs)
			fr.known = fr.known[:numRegs]
			clear(fr.known)
		}
		fr.acts = fr.acts[:0]
		fr.prevB = -1
		fr.lastID = 0
		fr.parent = nil
		fr.retDst = ir.NoReg
		return fr
	}
	return &frameState{
		fi:     fi,
		regs:   make([]int64, numRegs),
		known:  make([]bool, numRegs),
		prevB:  -1,
		retDst: ir.NoReg,
	}
}

// grabActivation returns a reset activation for one dynamic loop entry. The
// iteration-snapshot buffers and candidate-tracking maps keep their storage;
// snapValid=false and cleared maps make the record indistinguishable from a
// fresh one.
func (c *collector) grabActivation(sl *staticLoop, frame int64) *activation {
	var a *activation
	if n := len(c.actPool); n > 0 {
		a = c.actPool[n-1]
		c.actPool = c.actPool[:n-1]
		*a = activation{
			sl:        sl,
			frame:     frame,
			ctx:       -1,
			prevSnap:  a.prevSnap,
			prevKnown: a.prevKnown,
			written:   a.written,
			stores:    a.stores,
			storeGen:  a.storeGen,
		}
	} else {
		a = &activation{sl: sl, frame: frame, ctx: -1}
	}
	a.prof = c.loopProfile(sl)
	if sl.candidate {
		if cap(a.written) < sl.numRegs {
			a.written = make([]bool, sl.numRegs)
		} else {
			a.written = a.written[:sl.numRegs]
			clear(a.written)
		}
		if a.stores == nil {
			a.stores = map[int64]storeGen{}
		}
		// Advancing two generations makes every residual entry older than
		// "previous iteration", so the reused map needs no clearing.
		a.storeGen += 2
	} else {
		a.written, a.stores = nil, nil
	}
	return a
}

// syncActivations updates the frame's loop activations when control moves
// to block blk.
func (c *collector) syncActivations(fr *frameState, frame int64, blk int) {
	fs := c.statics[fr.fi]
	chain := fs.loopsAtBlock[blk]
	// Pop activations whose loop no longer contains blk.
	keep := 0
	for keep < len(fr.acts) && keep < len(chain) && fr.acts[keep].sl == chain[keep] {
		keep++
	}
	for len(fr.acts) > keep {
		c.popActivation(fr)
	}
	// Push new activations for newly entered loops.
	for len(fr.acts) < len(chain) {
		sl := chain[len(fr.acts)]
		a := c.grabActivation(sl, frame)
		// Dynamic (inter-procedural) nesting: the enclosing activation is
		// whatever loop is on top of the global stack right now — it may
		// live in a caller's function. Figure 6's accumulative coverage
		// needs this to avoid double counting loops reached through calls.
		if a.prof.Parent == nil && len(c.acts) > 0 {
			pk := c.acts[len(c.acts)-1].prof.Key
			if pk != a.prof.Key {
				a.prof.Parent = &pk
			}
		}
		a.prof.Entries++
		fr.acts = append(fr.acts, a)
		c.acts = append(c.acts, a)
	}
}

func (c *collector) iterationBoundary(fr *frameState, a *activation) {
	a.iter++
	a.prof.Iterations++
	if !a.sl.candidate {
		return
	}
	// Register change observation.
	n := len(fr.regs)
	if a.snapValid {
		a.prof.RegSamples++
		for r := 0; r < n; r++ {
			if a.prevKnown[r] && fr.known[r] && fr.regs[r] != a.prevSnap[r] {
				a.prof.RegChange[ir.Reg(r)]++
			}
			if a.prevKnown[r] && fr.known[r] {
				vs := a.prof.Values[ir.Reg(r)]
				if vs == nil {
					vs = newValueStats()
					a.prof.Values[ir.Reg(r)] = vs
				}
				vs.observe(fr.regs[r] - a.prevSnap[r])
			}
		}
		for r, w := range a.written {
			if w {
				a.prof.RegWritten[ir.Reg(r)]++
			}
		}
	}
	if len(a.prevSnap) != n {
		if cap(a.prevSnap) < n || cap(a.prevKnown) < n {
			a.prevSnap = make([]int64, n)
			a.prevKnown = make([]bool, n)
		} else {
			a.prevSnap = a.prevSnap[:n]
			a.prevKnown = a.prevKnown[:n]
		}
	}
	copy(a.prevSnap, fr.regs)
	copy(a.prevKnown, fr.known)
	a.snapValid = true
	clear(a.written)
	// Rotate store generations: current becomes previous, entries two or
	// more generations old fall out of scope without any map traffic.
	a.storeGen++
}

func (c *collector) popActivation(fr *frameState) {
	a := fr.acts[len(fr.acts)-1]
	fr.acts = fr.acts[:len(fr.acts)-1]
	// Remove from the global stack (it is the innermost for its frame; it
	// may not be the global top if callees opened activations — but frames
	// close before their callers, so scanning from the top is safe).
	for i := len(c.acts) - 1; i >= 0; i-- {
		if c.acts[i] == a {
			c.acts = append(c.acts[:i], c.acts[i+1:]...)
			break
		}
	}
	c.actPool = append(c.actPool, a)
}

func (c *collector) closeFrame(fr *frameState, frame int64) {
	for len(fr.acts) > 0 {
		c.popActivation(fr)
	}
	for i := len(c.stack) - 1; i >= 0; i-- {
		if c.stack[i] == fr {
			c.stack = append(c.stack[:i], c.stack[i+1:]...)
			break
		}
	}
}
