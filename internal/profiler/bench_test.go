package profiler

import (
	"testing"

	"repro/internal/interp"
)

func BenchmarkCollect(b *testing.B) {
	lp, err := interp.Load(buildMemDepLoop(200))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Collect(lp, 0); err != nil {
			b.Fatal(err)
		}
	}
}
