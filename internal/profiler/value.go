package profiler

import "sort"

// ValueStats accumulates the iteration-start value pattern of one register
// across the iterations of one loop. The SPT compiler's software value
// prediction (Section 4.4) consults it to decide whether a loop-carried
// value is predictable (constant or stride) and with what confidence.
type ValueStats struct {
	Samples int64           // number of consecutive-iteration deltas observed
	Deltas  map[int64]int64 // delta -> occurrences (capped)
	dropped int64           // deltas not recorded because the map was full
}

// maxDeltaClasses bounds the per-register delta histogram.
const maxDeltaClasses = 16

func newValueStats() *ValueStats {
	return &ValueStats{Deltas: make(map[int64]int64, 4)}
}

func (v *ValueStats) observe(delta int64) {
	v.Samples++
	if _, ok := v.Deltas[delta]; !ok && len(v.Deltas) >= maxDeltaClasses {
		v.dropped++
		return
	}
	v.Deltas[delta]++
}

// BestStride returns the most frequent iteration-to-iteration delta and the
// fraction of iterations it covers. A stride of 0 means the value is
// predictable by last-value prediction. ok is false when there are no
// samples.
func (v *ValueStats) BestStride() (stride int64, prob float64, ok bool) {
	if v == nil || v.Samples == 0 {
		return 0, 0, false
	}
	type kv struct {
		d int64
		n int64
	}
	all := make([]kv, 0, len(v.Deltas))
	for d, n := range v.Deltas {
		all = append(all, kv{d, n})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].n != all[j].n {
			return all[i].n > all[j].n
		}
		return all[i].d < all[j].d
	})
	best := all[0]
	return best.d, float64(best.n) / float64(v.Samples), true
}
