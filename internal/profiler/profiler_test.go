package profiler

import (
	"math"
	"testing"

	"repro/internal/interp"
	"repro/internal/ir"
)

func collect(t *testing.T, p *ir.Program) *Profile {
	t.Helper()
	lp, err := interp.Load(p)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	prof, err := Collect(lp, 0)
	if err != nil {
		t.Fatalf("Collect: %v", err)
	}
	return prof
}

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// buildCounted builds a counted while-loop with an accumulator.
func buildCounted(n int64) *ir.Program {
	b := ir.NewFuncBuilder("main", 0)
	i, s, c, z, inv := b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg()
	b.Block("entry")
	b.MovI(i, n)
	b.MovI(s, 0)
	b.MovI(z, 0)
	b.MovI(inv, 42) // loop-invariant
	b.Jmp("head")
	b.Block("head")
	b.ALU(ir.CmpGT, c, i, z)
	b.Br(c, "body", "exit")
	b.Block("body")
	b.ALU(ir.Add, s, s, inv)
	b.AddI(i, i, -1)
	b.Jmp("head")
	b.Block("exit")
	b.Ret(s)
	return ir.NewProgramBuilder("main").AddFunc(b.Done()).Done()
}

func TestCountedLoopProfile(t *testing.T) {
	prof := collect(t, buildCounted(50))
	lp := prof.Loop(LoopKey{Func: "main", Header: "head"})
	if lp == nil {
		t.Fatal("loop not profiled")
	}
	if lp.Entries != 1 {
		t.Errorf("entries = %d, want 1", lp.Entries)
	}
	if lp.Iterations != 50 {
		t.Errorf("iterations = %d, want 50", lp.Iterations)
	}
	if got := lp.TripCount(); !approx(got, 50, 0.01) {
		t.Errorf("trip count = %v", got)
	}
	// i (r0) changes every iteration; s (r1) changes every iteration
	// (inv != 0); inv (r4) never changes.
	if p := lp.RegChangeProb(0); !approx(p, 1, 0.05) {
		t.Errorf("RegChangeProb(i) = %v, want ~1", p)
	}
	if p := lp.RegChangeProb(1); !approx(p, 1, 0.05) {
		t.Errorf("RegChangeProb(s) = %v, want ~1", p)
	}
	if p := lp.RegChangeProb(4); p != 0 {
		t.Errorf("RegChangeProb(inv) = %v, want 0", p)
	}
	// Value profile: i strides by -1 with probability 1.
	stride, prob, ok := lp.Values[0].BestStride()
	if !ok || stride != -1 || !approx(prob, 1, 0.01) {
		t.Errorf("i stride = %d prob %v ok %v, want -1/1", stride, prob, ok)
	}
	// Body size: body has 2 instrs + latch jmp + header cmp + br = 5.
	if bs := lp.BodySize(); !approx(bs, 5, 1.5) {
		t.Errorf("BodySize = %v, want ~5", bs)
	}
	// Reach probability of body instructions is 1.
	for _, id := range []int{5, 7} { // cmp (id 4?) — check via exec counts instead
		_ = id
	}
	for id, n := range lp.Exec {
		if n > lp.Iterations+1 {
			t.Errorf("instr %d executed %d times > iterations", id, n)
		}
	}
}

// buildCallLoop: x updated through a call (SVP pattern, Figure 5).
func buildCallLoop(n int64) *ir.Program {
	bar := ir.NewFuncBuilder("bar", 1)
	v := bar.NewReg()
	bar.Block("entry")
	bar.AddI(v, bar.Param(0), 2)
	bar.Ret(v)

	b := ir.NewFuncBuilder("main", 0)
	x, i, c, z := b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg()
	b.Block("entry")
	b.MovI(x, 10)
	b.MovI(i, n)
	b.MovI(z, 0)
	b.Jmp("head")
	b.Block("head")
	b.ALU(ir.CmpGT, c, i, z)
	b.Br(c, "body", "exit")
	b.Block("body")
	b.Call(x, "bar", x) // x = bar(x) == x + 2
	b.AddI(i, i, -1)
	b.Jmp("head")
	b.Block("exit")
	b.Ret(x)
	return ir.NewProgramBuilder("main").AddFunc(b.Done()).AddFunc(bar.Done()).Done()
}

func TestCallReturnValueProfiled(t *testing.T) {
	prof := collect(t, buildCallLoop(40))
	lp := prof.Loop(LoopKey{Func: "main", Header: "head"})
	if lp == nil {
		t.Fatal("loop not profiled")
	}
	// x (r0) is updated via the call: the shadow register file must see the
	// return value, so the value profile finds stride +2.
	stride, prob, ok := lp.Values[0].BestStride()
	if !ok || stride != 2 || !approx(prob, 1, 0.01) {
		t.Errorf("x stride = %d prob %v ok %v, want 2/1.0", stride, prob, ok)
	}
	// Inclusive body size includes the callee (call + 2 callee instrs + ...).
	if bs := lp.BodySize(); bs < 6 {
		t.Errorf("BodySize = %v, want >= 6 (inclusive of callee)", bs)
	}
}

// buildMemDepLoop: each iteration stores to a slot and loads the slot the
// previous iteration stored (carried memory dependence with probability 1).
func buildMemDepLoop(n int64) *ir.Program {
	b := ir.NewFuncBuilder("main", 0)
	i, c, z, g, v := b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg()
	b.Block("entry")
	b.MovI(i, n)
	b.MovI(z, 0)
	b.Jmp("head")
	b.Block("head")
	b.ALU(ir.CmpGT, c, i, z)
	b.Br(c, "body", "exit")
	b.Block("body")
	b.GAddr(g, "cell")
	b.Load(v, g, 0) // reads what the previous iteration stored
	b.AddI(v, v, 1)
	b.Store(g, 0, v) // feeds the next iteration
	b.AddI(i, i, -1)
	b.Jmp("head")
	b.Block("exit")
	b.Ret(v)
	return ir.NewProgramBuilder("main").AddFunc(b.Done()).AddGlobal("cell", 1).Done()
}

func TestMemDepProfiled(t *testing.T) {
	prof := collect(t, buildMemDepLoop(30))
	lp := prof.Loop(LoopKey{Func: "main", Header: "head"})
	if lp == nil {
		t.Fatal("loop not profiled")
	}
	if len(lp.MemDep) == 0 {
		t.Fatal("no carried memory dependences recorded")
	}
	var total int64
	for _, n := range lp.MemDep {
		total += n
	}
	// 29 of 30 iterations read the previous iteration's store.
	if total != 29 {
		t.Errorf("carried mem deps = %d, want 29", total)
	}
}

func TestSameIterationStoreNotCarried(t *testing.T) {
	// Store then load the same address within one iteration: no carried dep.
	b := ir.NewFuncBuilder("main", 0)
	i, c, z, g, v := b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg()
	b.Block("entry")
	b.MovI(i, 20)
	b.MovI(z, 0)
	b.Jmp("head")
	b.Block("head")
	b.ALU(ir.CmpGT, c, i, z)
	b.Br(c, "body", "exit")
	b.Block("body")
	b.GAddr(g, "cell")
	b.Store(g, 0, i) // same-iteration store first
	b.Load(v, g, 0)  // then load: intra dependence only
	b.AddI(i, i, -1)
	b.Jmp("head")
	b.Block("exit")
	b.Ret(v)
	p := ir.NewProgramBuilder("main").AddFunc(b.Done()).AddGlobal("cell", 1).Done()
	prof := collect(t, p)
	lp := prof.Loop(LoopKey{Func: "main", Header: "head"})
	if len(lp.MemDep) != 0 {
		t.Errorf("same-iteration dependence wrongly recorded as carried: %v", lp.MemDep)
	}
}

func TestGuardedUpdateProbability(t *testing.T) {
	// p is updated only when i is even: RegChangeProb(p) ~ 0.5.
	b := ir.NewFuncBuilder("main", 0)
	i, pr, c, z, one, t0 := b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg()
	b.Block("entry")
	b.MovI(i, 100)
	b.MovI(pr, 0)
	b.MovI(z, 0)
	b.MovI(one, 1)
	b.Jmp("head")
	b.Block("head")
	b.ALU(ir.CmpGT, c, i, z)
	b.Br(c, "body", "exit")
	b.Block("body")
	b.ALU(ir.And, t0, i, one)
	b.Br(t0, "skip", "upd")
	b.Block("upd")
	b.AddI(pr, pr, 7)
	b.Jmp("skip2")
	b.Block("skip")
	b.Jmp("skip2")
	b.Block("skip2")
	b.AddI(i, i, -1)
	b.Jmp("head")
	b.Block("exit")
	b.Ret(pr)
	p := ir.NewProgramBuilder("main").AddFunc(b.Done()).Done()
	prof := collect(t, p)
	lp := prof.Loop(LoopKey{Func: "main", Header: "head"})
	if got := lp.RegChangeProb(1); !approx(got, 0.5, 0.05) {
		t.Errorf("RegChangeProb(p) = %v, want ~0.5", got)
	}
	// Reach probability of the guarded update is ~0.5.
	f := p.EntryFunc()
	updBlk := f.BlockByLabel("upd")
	updID := updBlk.Instrs[0].ID
	if got := lp.ReachProb(updID); !approx(got, 0.5, 0.05) {
		t.Errorf("ReachProb(upd) = %v, want ~0.5", got)
	}
}

func TestNestedLoopCoverage(t *testing.T) {
	// Outer 10 x inner 20: inner's inclusive instrs ⊂ outer's.
	b := ir.NewFuncBuilder("main", 0)
	i, j, c, z, s := b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg()
	b.Block("entry")
	b.MovI(i, 10)
	b.MovI(z, 0)
	b.MovI(s, 0)
	b.Jmp("ohead")
	b.Block("ohead")
	b.ALU(ir.CmpGT, c, i, z)
	b.Br(c, "obody", "exit")
	b.Block("obody")
	b.MovI(j, 20)
	b.Jmp("ihead")
	b.Block("ihead")
	b.ALU(ir.CmpGT, c, j, z)
	b.Br(c, "ibody", "olatch")
	b.Block("ibody")
	b.ALU(ir.Add, s, s, j)
	b.AddI(j, j, -1)
	b.Jmp("ihead")
	b.Block("olatch")
	b.AddI(i, i, -1)
	b.Jmp("ohead")
	b.Block("exit")
	b.Ret(s)
	p := ir.NewProgramBuilder("main").AddFunc(b.Done()).Done()
	prof := collect(t, p)
	outer := prof.Loop(LoopKey{Func: "main", Header: "ohead"})
	inner := prof.Loop(LoopKey{Func: "main", Header: "ihead"})
	if outer == nil || inner == nil {
		t.Fatal("loops not profiled")
	}
	if inner.Iterations != 200 {
		t.Errorf("inner iterations = %d, want 200", inner.Iterations)
	}
	if outer.Iterations != 10 {
		t.Errorf("outer iterations = %d, want 10", outer.Iterations)
	}
	if inner.Entries != 10 {
		t.Errorf("inner entries = %d, want 10", inner.Entries)
	}
	if inner.InclInstrs >= outer.InclInstrs {
		t.Errorf("inner inclusive (%d) should be < outer inclusive (%d)",
			inner.InclInstrs, outer.InclInstrs)
	}
	if outer.InclInstrs >= prof.TotalInstrs {
		t.Errorf("outer inclusive (%d) should be < program total (%d)",
			outer.InclInstrs, prof.TotalInstrs)
	}
}

func TestSingleBlockLoopIterations(t *testing.T) {
	// Rotated single-block loop: back edge re-enters the same block.
	b := ir.NewFuncBuilder("main", 0)
	i, c := b.NewReg(), b.NewReg()
	b.Block("entry")
	b.MovI(i, 25)
	b.Jmp("body")
	b.Block("body")
	b.AddI(i, i, -1)
	b.MovI(c, 0)
	b.ALU(ir.CmpGT, c, i, c)
	b.Br(c, "body", "exit")
	b.Block("exit")
	b.Ret(i)
	p := ir.NewProgramBuilder("main").AddFunc(b.Done()).Done()
	prof := collect(t, p)
	lp := prof.Loop(LoopKey{Func: "main", Header: "body"})
	if lp == nil {
		t.Fatal("loop not profiled")
	}
	if lp.Iterations != 25 {
		t.Errorf("iterations = %d, want 25", lp.Iterations)
	}
}

func TestValueStatsBestStride(t *testing.T) {
	vs := newValueStats()
	for i := 0; i < 90; i++ {
		vs.observe(4)
	}
	for i := 0; i < 10; i++ {
		vs.observe(-1)
	}
	stride, prob, ok := vs.BestStride()
	if !ok || stride != 4 || !approx(prob, 0.9, 0.001) {
		t.Errorf("BestStride = %d/%v/%v", stride, prob, ok)
	}
	var empty *ValueStats
	if _, _, ok := empty.BestStride(); ok {
		t.Error("nil stats should report !ok")
	}
}

func TestValueStatsCap(t *testing.T) {
	vs := newValueStats()
	for d := int64(0); d < 100; d++ {
		vs.observe(d)
	}
	if len(vs.Deltas) > maxDeltaClasses {
		t.Errorf("delta classes = %d, exceeds cap", len(vs.Deltas))
	}
	if vs.Samples != 100 {
		t.Errorf("samples = %d, want 100", vs.Samples)
	}
}

func TestCallSiteCycles(t *testing.T) {
	prof := collect(t, buildCallLoop(30))
	lp := prof.Loop(LoopKey{Func: "main", Header: "head"})
	if lp == nil {
		t.Fatal("loop missing")
	}
	// Find the call site (the Call instruction executes once per iteration).
	var callID int = -1
	for id := range lp.CalleeCycles {
		callID = id
	}
	if callID < 0 {
		t.Fatal("no callee cycles recorded")
	}
	// bar has 2 instructions (addi, ret): ~2 cycles of callee work per call.
	got := lp.CallSiteCycles(callID)
	if got < 1.5 || got > 3.5 {
		t.Errorf("CallSiteCycles = %v, want ~2", got)
	}
	if lp.CallSiteCycles(99999) != 0 {
		t.Error("unknown call site should report 0")
	}
}
