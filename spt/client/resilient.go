package client

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// ResilientConfig tunes the Resilient wrapper. Zero values take the
// defaults.
type ResilientConfig struct {
	// MaxAttempts bounds the tries per call, the first included (default 5).
	MaxAttempts int
	// Backoff shapes the inter-attempt sleep.
	Backoff Backoff
	// Breaker tunes the per-endpoint circuit breakers.
	Breaker BreakerConfig
	// HedgeAfter, when positive, hedges idempotent GETs (Job, Health,
	// Metrics): if the first request has not answered within this window, a
	// second identical request races it and the first response wins. POSTs
	// are never hedged — they consume queue slots.
	HedgeAfter time.Duration
	// Seed makes the jitter deterministic for tests (0 = time-seeded).
	Seed int64
}

func (c ResilientConfig) withDefaults() ResilientConfig {
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 5
	}
	return c
}

// ResilientStats are lifetime counters of a Resilient wrapper.
type ResilientStats struct {
	Attempts          int64 // requests sent (including retries and probes)
	Retries           int64 // attempts beyond each call's first
	Hedges            int64 // hedge requests launched
	HedgeWins         int64 // hedges that answered before the primary request
	BreakerOpens      int64 // circuit transitions into open, across endpoints
	BreakerRecoveries int64 // half-open probes that closed a circuit
	BreakerWaits      int64 // attempts delayed because a circuit was open
}

// Resilient wraps a Client with retries (capped exponential backoff, full
// jitter, Retry-After honored), a per-endpoint circuit breaker and optional
// hedged reads. It is safe for concurrent use. Construct with NewResilient.
//
// Retry classification is context-deadline-aware: when the remaining
// deadline cannot absorb the computed backoff (or an open breaker's
// cool-down), the call fails immediately with the last real error instead
// of sleeping into a guaranteed context timeout.
type Resilient struct {
	c   *Client
	cfg ResilientConfig

	mu  sync.Mutex
	rnd *rand.Rand

	bmu      sync.Mutex
	breakers map[string]*breaker

	attempts     atomic.Int64
	retries      atomic.Int64
	hedges       atomic.Int64
	hedgeWins    atomic.Int64
	breakerWaits atomic.Int64

	// sleep is swapped by tests; the default honors ctx.
	sleep func(ctx context.Context, d time.Duration) error
}

// NewResilient wraps c. A nil cfg field set takes the documented defaults.
func NewResilient(c *Client, cfg ResilientConfig) *Resilient {
	cfg = cfg.withDefaults()
	seed := cfg.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	return &Resilient{
		c:        c,
		cfg:      cfg,
		rnd:      rand.New(rand.NewSource(seed)),
		breakers: make(map[string]*breaker),
		sleep: func(ctx context.Context, d time.Duration) error {
			if d <= 0 {
				return ctx.Err()
			}
			t := time.NewTimer(d)
			defer t.Stop()
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-t.C:
				return nil
			}
		},
	}
}

// Client returns the wrapped raw client.
func (r *Resilient) Client() *Client { return r.c }

// Stats snapshots the wrapper's lifetime counters.
func (r *Resilient) Stats() ResilientStats {
	st := ResilientStats{
		Attempts:     r.attempts.Load(),
		Retries:      r.retries.Load(),
		Hedges:       r.hedges.Load(),
		HedgeWins:    r.hedgeWins.Load(),
		BreakerWaits: r.breakerWaits.Load(),
	}
	r.bmu.Lock()
	defer r.bmu.Unlock()
	for _, b := range r.breakers {
		o, rec, _ := b.snapshot()
		st.BreakerOpens += o
		st.BreakerRecoveries += rec
	}
	return st
}

func (r *Resilient) breakerFor(endpoint string) *breaker {
	r.bmu.Lock()
	defer r.bmu.Unlock()
	b, ok := r.breakers[endpoint]
	if !ok {
		b = newBreaker(r.cfg.Breaker)
		r.breakers[endpoint] = b
	}
	return b
}

func (r *Resilient) jitterDelay(attempt int, retryAfter time.Duration) time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.cfg.Backoff.delay(attempt, retryAfter, r.rnd)
}

// fitsDeadline reports whether ctx can absorb sleeping d and still leave
// room for one more attempt.
func fitsDeadline(ctx context.Context, d time.Duration) bool {
	dl, ok := ctx.Deadline()
	if !ok {
		return true
	}
	return time.Until(dl) > d
}

// call runs one endpoint operation under the retry + breaker policy.
func call[T any](r *Resilient, ctx context.Context, endpoint string, fn func(context.Context) (T, error)) (T, error) {
	var zero T
	var lastErr error
	br := r.breakerFor(endpoint)
	for attempt := 0; attempt < r.cfg.MaxAttempts; attempt++ {
		// Admission: wait out an open circuit, bounded by the context.
		for {
			ok, wait := br.allow(time.Now())
			if ok {
				break
			}
			r.breakerWaits.Add(1)
			if !fitsDeadline(ctx, wait) {
				return zero, fmt.Errorf("%s: %w (last error: %v)", endpoint, ErrCircuitOpen, lastErr)
			}
			if err := r.sleep(ctx, wait); err != nil {
				return zero, fmt.Errorf("%s: %w (last error: %v)", endpoint, ErrCircuitOpen, lastErr)
			}
		}

		r.attempts.Add(1)
		if attempt > 0 {
			r.retries.Add(1)
		}
		v, err := fn(ctx)
		// Backpressure is the server working as designed — it must not trip
		// the breaker; everything else retryable (transport, 5xx) does.
		br.report(err == nil || !IsRetryable(err) || IsBackpressure(err), time.Now())
		if err == nil {
			return v, nil
		}
		if !IsRetryable(err) {
			return zero, err
		}
		lastErr = err
		if attempt+1 >= r.cfg.MaxAttempts {
			break
		}
		d := r.jitterDelay(attempt, retryAfterOf(err))
		if !fitsDeadline(ctx, d) {
			return zero, fmt.Errorf("%s: retry abandoned, context deadline cannot absorb %s backoff: %w", endpoint, d, err)
		}
		if serr := r.sleep(ctx, d); serr != nil {
			return zero, fmt.Errorf("%s: retry interrupted: %w (last error: %v)", endpoint, serr, err)
		}
	}
	return zero, fmt.Errorf("%s: giving up after %d attempts: %w", endpoint, r.cfg.MaxAttempts, lastErr)
}

// hedge races a duplicate request after cfg.HedgeAfter of silence. Only
// used for idempotent GETs.
func hedge[T any](r *Resilient, ctx context.Context, fn func(context.Context) (T, error)) (T, error) {
	if r.cfg.HedgeAfter <= 0 {
		return fn(ctx)
	}
	hctx, cancel := context.WithCancel(ctx)
	defer cancel()
	type res struct {
		v      T
		err    error
		hedged bool
	}
	resc := make(chan res, 2)
	launch := func(hedged bool) {
		go func() {
			v, err := fn(hctx)
			resc <- res{v, err, hedged}
		}()
	}
	launch(false)
	launched := 1
	t := time.NewTimer(r.cfg.HedgeAfter)
	defer t.Stop()
	var firstErr error
	for settled := 0; settled < launched; {
		select {
		case <-t.C:
			if launched == 1 {
				r.hedges.Add(1)
				r.attempts.Add(1)
				launch(true)
				launched = 2
			}
		case rr := <-resc:
			settled++
			if rr.err == nil {
				if rr.hedged {
					r.hedgeWins.Add(1)
				}
				return rr.v, nil // first success wins; cancel() reaps the loser
			}
			if firstErr == nil {
				firstErr = rr.err
			}
		case <-ctx.Done():
			var zero T
			if firstErr != nil {
				return zero, firstErr
			}
			return zero, ctx.Err()
		}
	}
	var zero T
	return zero, firstErr
}

// Compile submits a compile job with retries.
func (r *Resilient) Compile(ctx context.Context, req CompileRequest) (*CompileResponse, error) {
	return call(r, ctx, "/v1/compile", func(ctx context.Context) (*CompileResponse, error) {
		return r.c.Compile(ctx, req)
	})
}

// Simulate submits a simulate job with retries.
func (r *Resilient) Simulate(ctx context.Context, req SimulateRequest) (*SimulateResponse, error) {
	return call(r, ctx, "/v1/simulate", func(ctx context.Context) (*SimulateResponse, error) {
		return r.c.Simulate(ctx, req)
	})
}

// Sweep submits a sweep job with retries.
func (r *Resilient) Sweep(ctx context.Context, req SweepRequest) (*SweepResponse, error) {
	return call(r, ctx, "/v1/sweep", func(ctx context.Context) (*SweepResponse, error) {
		return r.c.Sweep(ctx, req)
	})
}

// Job polls an async job with retries and (when configured) hedging.
func (r *Resilient) Job(ctx context.Context, id string) (*JobStatus, error) {
	return call(r, ctx, "/v1/jobs", func(ctx context.Context) (*JobStatus, error) {
		return hedge(r, ctx, func(ctx context.Context) (*JobStatus, error) {
			return r.c.Job(ctx, id)
		})
	})
}

// Health fetches /healthz with retries and (when configured) hedging.
func (r *Resilient) Health(ctx context.Context) (*Health, error) {
	return call(r, ctx, "/healthz", func(ctx context.Context) (*Health, error) {
		return hedge(r, ctx, func(ctx context.Context) (*Health, error) {
			return r.c.Health(ctx)
		})
	})
}

// Metrics fetches /metrics with retries.
func (r *Resilient) Metrics(ctx context.Context) (string, error) {
	return call(r, ctx, "/metrics", func(ctx context.Context) (string, error) {
		return r.c.Metrics(ctx)
	})
}

// Wait polls an async job until it reaches StateDone (or ctx ends),
// sleeping poll between requests (0 means 50ms). Unlike Client.Wait it
// rides out daemon restarts: transient poll failures retry under the
// wrapper's policy.
func (r *Resilient) Wait(ctx context.Context, id string, poll time.Duration) (*JobStatus, error) {
	if poll <= 0 {
		poll = 50 * time.Millisecond
	}
	t := time.NewTicker(poll)
	defer t.Stop()
	for {
		js, err := r.Job(ctx, id)
		if err != nil {
			return nil, err
		}
		if js.State == StateDone {
			return js, nil
		}
		select {
		case <-ctx.Done():
			return js, ctx.Err()
		case <-t.C:
		}
	}
}
