package client

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// truncatingServer answers /healthz; the first truncate responses declare a
// full Content-Length but write only half the body, so the client's body
// read fails with io.ErrUnexpectedEOF.
func truncatingServer(truncate int) (*httptest.Server, *atomic.Int64) {
	var calls atomic.Int64
	body := []byte(`{"status":"ok","draining":false,"queue_depth":0,"in_flight":0,"workers":1,"uptime_ms":1}`)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := calls.Add(1)
		w.Header().Set("Content-Type", "application/json")
		if int(n) <= truncate {
			w.Header().Set("Content-Length", fmt.Sprint(len(body)))
			_, _ = w.Write(body[:len(body)/2]) // handler returns early: connection dies mid-body
			return
		}
		_, _ = w.Write(body)
	}))
	return ts, &calls
}

func TestTruncatedBodyIsClassifiedRetryable(t *testing.T) {
	ts, _ := truncatingServer(1)
	defer ts.Close()
	cl := New(ts.URL, ts.Client())
	_, err := cl.Health(context.Background())
	if err == nil {
		t.Fatal("truncated response returned nil error")
	}
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Errorf("truncated-body error = %v; want io.ErrUnexpectedEOF in the chain", err)
	}
	if !IsRetryable(err) {
		t.Errorf("IsRetryable(%v) = false; a mid-body truncation must be retryable", err)
	}
}

func TestResilientRetriesTruncatedBody(t *testing.T) {
	ts, calls := truncatingServer(1)
	defer ts.Close()
	r := NewResilient(New(ts.URL, ts.Client()), ResilientConfig{Seed: 1, Backoff: Backoff{Base: time.Millisecond, Max: time.Millisecond}})
	h, err := r.Health(context.Background())
	if err != nil {
		t.Fatalf("Health after truncation: %v", err)
	}
	if h.Status != "ok" {
		t.Errorf("health = %+v; want ok", h)
	}
	if got := calls.Load(); got != 2 {
		t.Errorf("server saw %d calls; want 2 (truncated + retried)", got)
	}
	if st := r.Stats(); st.Retries != 1 {
		t.Errorf("stats = %+v; want exactly 1 retry", st)
	}
}

func TestRetryClassification(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{nil, false},
		{context.Canceled, false},
		{context.DeadlineExceeded, false},
		{fmt.Errorf("wrap: %w", io.ErrUnexpectedEOF), true},
		{&APIError{StatusCode: 429}, true},
		{&APIError{StatusCode: 500}, true},
		{&APIError{StatusCode: 503}, true},
		{&APIError{StatusCode: 504}, true},
		{&APIError{StatusCode: 400}, false},
		{&APIError{StatusCode: 404}, false},
		{errors.New("opaque"), false},
	}
	for _, tc := range cases {
		if got := IsRetryable(tc.err); got != tc.want {
			t.Errorf("IsRetryable(%v) = %v; want %v", tc.err, got, tc.want)
		}
	}
}

func TestBackoffHonorsRetryAfterAsFloor(t *testing.T) {
	var backpressured atomic.Bool
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if backpressured.CompareAndSwap(false, true) {
			w.Header().Set("Retry-After", "7")
			w.WriteHeader(http.StatusTooManyRequests)
			fmt.Fprint(w, `{"error":"queue full"}`)
			return
		}
		fmt.Fprint(w, `{"status":"ok"}`)
	}))
	defer ts.Close()

	r := NewResilient(New(ts.URL, ts.Client()), ResilientConfig{Seed: 1})
	var slept []time.Duration
	r.sleep = func(ctx context.Context, d time.Duration) error {
		slept = append(slept, d)
		return nil // don't actually wait in the test
	}
	if _, err := r.Health(context.Background()); err != nil {
		t.Fatalf("Health: %v", err)
	}
	if len(slept) != 1 {
		t.Fatalf("slept %v; want exactly one backoff", slept)
	}
	if slept[0] < 7*time.Second {
		t.Errorf("backoff %v shorter than the server's Retry-After of 7s", slept[0])
	}
}

func TestRetryAbandonedWhenDeadlineCannotAbsorbBackoff(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "30")
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprint(w, `{"error":"draining"}`)
	}))
	defer ts.Close()

	r := NewResilient(New(ts.URL, ts.Client()), ResilientConfig{Seed: 1})
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := r.Health(ctx)
	if err == nil {
		t.Fatal("Health succeeded against a permanently draining server")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("call took %v; the 30s Retry-After must not be slept when the deadline is 100ms", elapsed)
	}
	// The original backpressure error stays visible through the wrap.
	var ae *APIError
	if !errors.As(err, &ae) || ae.StatusCode != 503 {
		t.Errorf("error %v; want the underlying 503 preserved in the chain", err)
	}
}

func TestBreakerOpensAndRecovers(t *testing.T) {
	var healthy atomic.Bool
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !healthy.Load() {
			w.WriteHeader(http.StatusInternalServerError)
			fmt.Fprint(w, `{"error":"boom"}`)
			return
		}
		fmt.Fprint(w, `{"status":"ok"}`)
	}))
	defer ts.Close()

	r := NewResilient(New(ts.URL, ts.Client()), ResilientConfig{
		Seed:        1,
		MaxAttempts: 2,
		Backoff:     Backoff{Base: time.Millisecond, Max: time.Millisecond},
		Breaker:     BreakerConfig{FailureThreshold: 3, OpenFor: 50 * time.Millisecond},
	})

	// Two failing calls = 4 failed attempts: the breaker (threshold 3) trips.
	for i := 0; i < 2; i++ {
		if _, err := r.Health(context.Background()); err == nil {
			t.Fatal("Health succeeded against a failing server")
		}
	}
	st := r.Stats()
	if st.BreakerOpens < 1 {
		t.Fatalf("stats = %+v; breaker should have opened", st)
	}

	// While open, a short-deadline call fast-fails with ErrCircuitOpen
	// instead of burning its deadline on a doomed request.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	_, err := r.Health(ctx)
	cancel()
	if !errors.Is(err, ErrCircuitOpen) {
		t.Errorf("call while open: %v; want ErrCircuitOpen", err)
	}

	// Server heals; after the cool-down a probe closes the circuit.
	healthy.Store(true)
	time.Sleep(60 * time.Millisecond)
	if _, err := r.Health(context.Background()); err != nil {
		t.Fatalf("Health after recovery: %v", err)
	}
	if st := r.Stats(); st.BreakerRecoveries < 1 {
		t.Errorf("stats = %+v; breaker should have recovered", st)
	}
}

func TestBreakerStateMachine(t *testing.T) {
	b := newBreaker(BreakerConfig{FailureThreshold: 2, OpenFor: time.Second, HalfOpenProbes: 1})
	t0 := time.Unix(1000, 0)
	if ok, _ := b.allow(t0); !ok {
		t.Fatal("closed breaker refused a call")
	}
	b.report(false, t0)
	b.report(false, t0) // second consecutive failure: opens
	if ok, wait := b.allow(t0); ok || wait != time.Second {
		t.Fatalf("allow right after open = %v wait %v; want refusal for 1s", ok, wait)
	}
	// Cool-down passed: exactly one probe is admitted.
	t1 := t0.Add(2 * time.Second)
	if ok, _ := b.allow(t1); !ok {
		t.Fatal("half-open breaker refused the probe")
	}
	if ok, _ := b.allow(t1); ok {
		t.Fatal("half-open breaker admitted a second probe beyond the budget")
	}
	// Probe failure re-opens; probe success after the next cool-down closes.
	b.report(false, t1)
	if ok, _ := b.allow(t1.Add(10 * time.Millisecond)); ok {
		t.Fatal("breaker admitted a call immediately after a failed probe")
	}
	t2 := t1.Add(2 * time.Second)
	if ok, _ := b.allow(t2); !ok {
		t.Fatal("breaker refused the second probe")
	}
	b.report(true, t2)
	if ok, _ := b.allow(t2); !ok {
		t.Fatal("breaker not closed after a successful probe")
	}
	opens, recoveries, _ := b.snapshot()
	if opens != 2 || recoveries != 1 {
		t.Errorf("opens=%d recoveries=%d; want 2 and 1", opens, recoveries)
	}
}

func TestHedgedReadRacesASecondRequest(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			// First request stalls well past the hedge window.
			select {
			case <-r.Context().Done():
				return
			case <-time.After(2 * time.Second):
			}
		}
		fmt.Fprint(w, `{"status":"ok"}`)
	}))
	defer ts.Close()

	r := NewResilient(New(ts.URL, ts.Client()), ResilientConfig{Seed: 1, HedgeAfter: 20 * time.Millisecond})
	start := time.Now()
	h, err := r.Health(context.Background())
	if err != nil {
		t.Fatalf("hedged Health: %v", err)
	}
	if h.Status != "ok" {
		t.Errorf("health = %+v", h)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("hedged read took %v; the hedge should have answered in ~20ms", elapsed)
	}
	if st := r.Stats(); st.Hedges != 1 {
		t.Errorf("stats = %+v; want 1 hedge", st)
	}
}

func TestBackpressureDoesNotTripBreaker(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusTooManyRequests)
		fmt.Fprint(w, `{"error":"queue full"}`)
	}))
	defer ts.Close()
	r := NewResilient(New(ts.URL, ts.Client()), ResilientConfig{
		Seed:        1,
		MaxAttempts: 6,
		Breaker:     BreakerConfig{FailureThreshold: 2},
	})
	r.sleep = func(ctx context.Context, d time.Duration) error { return nil }
	if _, err := r.Health(context.Background()); err == nil {
		t.Fatal("Health succeeded against a permanently full queue")
	}
	if st := r.Stats(); st.BreakerOpens != 0 {
		t.Errorf("stats = %+v; 429s must never open the circuit", st)
	}
}
