package client

import (
	"context"
	"errors"
	"io"
	"math/rand"
	"net"
	"syscall"
	"time"
)

// IsRetryable reports whether err is worth retrying against the same
// daemon: backpressure (429/503), transient 5xx responses of an idempotent
// API, and transport failures — including io.ErrUnexpectedEOF or a
// connection reset observed *while reading the response body*, not only
// pre-request dial errors. Context cancellation and deadline expiry are
// never retryable: the caller's clock has run out, not the server's.
func IsRetryable(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var ae *APIError
	if errors.As(err, &ae) {
		switch ae.StatusCode {
		case 429, 500, 502, 503, 504:
			// Every sptd job is idempotent (results are content-addressed
			// through the artifact cache), so a 500 — including an isolated
			// panic — is safe to resubmit.
			return true
		default:
			return false
		}
	}
	return isTransport(err)
}

// isTransport classifies network- and body-level failures.
func isTransport(err error) bool {
	if errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, io.EOF) {
		return true
	}
	if errors.Is(err, syscall.ECONNRESET) || errors.Is(err, syscall.ECONNREFUSED) ||
		errors.Is(err, syscall.EPIPE) {
		return true
	}
	var ne net.Error
	if errors.As(err, &ne) {
		return true
	}
	var oe *net.OpError
	return errors.As(err, &oe)
}

// retryAfterOf extracts the server's Retry-After hint from a backpressure
// error (zero when absent).
func retryAfterOf(err error) time.Duration {
	var ae *APIError
	if errors.As(err, &ae) && ae.RetryAfterSeconds > 0 {
		return time.Duration(ae.RetryAfterSeconds) * time.Second
	}
	return 0
}

// Backoff is a capped exponential backoff with full jitter. The zero value
// takes the defaults (50ms base, 2s cap).
type Backoff struct {
	Base time.Duration // first retry's upper bound (default 50ms)
	Max  time.Duration // cap on the exponential growth (default 2s)
}

func (b Backoff) withDefaults() Backoff {
	if b.Base <= 0 {
		b.Base = 50 * time.Millisecond
	}
	if b.Max <= 0 {
		b.Max = 2 * time.Second
	}
	return b
}

// delay computes the sleep before retry number attempt (0-based). The
// server's Retry-After, when present, is honored as the floor — the jitter
// only ever adds to it, so a shed request never comes back early.
func (b Backoff) delay(attempt int, retryAfter time.Duration, rnd *rand.Rand) time.Duration {
	b = b.withDefaults()
	ceil := b.Base << uint(attempt)
	if ceil > b.Max || ceil <= 0 {
		ceil = b.Max
	}
	jitter := time.Duration(rnd.Int63n(int64(ceil) + 1)) // full jitter: [0, ceil]
	if retryAfter > 0 {
		return retryAfter + jitter
	}
	return jitter
}
