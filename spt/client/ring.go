package client

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
)

// RouteKey is the cluster routing identity of a request: the benchmark and
// scale determine the generated program bit-for-bit, so hashing them is
// hashing the program fingerprint one compile earlier. Every request for the
// same program — any configuration, any sweep family — routes to the same
// node, which is what lets that node's recording cache interpret the program
// once and replay it for every variant the cluster sees.
func RouteKey(benchmark string, scale int) string {
	if scale <= 0 {
		scale = 1
	}
	return fmt.Sprintf("%s/%d", benchmark, scale)
}

// Ring is a consistent-hash ring over named nodes. Each member is projected
// onto the ring at `replicas` virtual points (FNV-64a of "name#i"), and a
// key's owner is the first alive member clockwise from the key's hash.
// Members can be marked dead without being removed: the ring keeps their
// points, so a revived node reclaims exactly the arcs it owned before —
// membership changes move only the keys they must (the consistent-hashing
// contract), and two ring views that agree on the member set and the alive
// set agree on every owner.
//
// Ring is safe for concurrent use.
type Ring struct {
	mu       sync.RWMutex
	replicas int
	points   []ringPoint // sorted by hash
	alive    map[string]bool
}

type ringPoint struct {
	hash uint64
	node string
}

// DefaultRingReplicas is the virtual-node count used when NewRing is given
// replicas <= 0. 64 points per node keeps the ownership split of a 3-node
// ring within a few percent of even.
const DefaultRingReplicas = 64

// NewRing builds a ring over the given member names, all initially alive.
func NewRing(members []string, replicas int) *Ring {
	if replicas <= 0 {
		replicas = DefaultRingReplicas
	}
	r := &Ring{replicas: replicas, alive: make(map[string]bool, len(members))}
	for _, m := range members {
		r.addLocked(m)
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].node < r.points[j].node
	})
	return r
}

// addLocked projects one member onto the ring (callers sort r.points).
func (r *Ring) addLocked(name string) {
	if _, ok := r.alive[name]; ok {
		return
	}
	r.alive[name] = true
	for i := 0; i < r.replicas; i++ {
		r.points = append(r.points, ringPoint{hash: ringHash(fmt.Sprintf("%s#%d", name, i)), node: name})
	}
}

// Add projects a new member onto the ring at runtime — the gossip-join
// path. Adding an existing member is a no-op (in particular it does not
// resurrect a dead member; use SetAlive for state). Because the member's
// virtual points depend only on its name, every node that learns of the
// join converges on the identical ring.
func (r *Ring) Add(name string) {
	if name == "" {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.alive[name]; ok {
		return
	}
	r.addLocked(name)
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].node < r.points[j].node
	})
}

func ringHash(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	return h.Sum64()
}

// Members returns every member name, alive or dead, sorted.
func (r *Ring) Members() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.alive))
	for m := range r.alive {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// Alive returns the currently-alive member names, sorted.
func (r *Ring) Alive() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.alive))
	for m, ok := range r.alive {
		if ok {
			out = append(out, m)
		}
	}
	sort.Strings(out)
	return out
}

// IsAlive reports whether name is a member currently marked alive.
func (r *Ring) IsAlive(name string) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.alive[name]
}

// SetAlive marks a member alive or dead. Marking dead reshards its arcs to
// their clockwise successors; marking alive hands exactly those arcs back.
// Unknown names are ignored (members enter the ring only through NewRing
// or Add).
func (r *Ring) SetAlive(name string, alive bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.alive[name]; ok {
		r.alive[name] = alive
	}
}

// Owner returns the alive member owning key, walking clockwise from the
// key's hash past dead members. ok is false when no member is alive.
func (r *Ring) Owner(key string) (string, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 {
		return "", false
	}
	h := ringHash(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	for i := 0; i < len(r.points); i++ {
		p := r.points[(start+i)%len(r.points)]
		if r.alive[p.node] {
			return p.node, true
		}
	}
	return "", false
}

// Successors returns the first n distinct alive members clockwise from
// key's hash — the replica set for an object stored under key, owner
// first. Every node with the same member and alive sets computes the
// identical list, which is what makes "who holds a copy" answerable
// without any coordination. Fewer than n members may be returned when the
// ring has fewer alive members.
func (r *Ring) Successors(key string, n int) []string {
	if n <= 0 {
		return nil
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 {
		return nil
	}
	h := ringHash(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if seen[p.node] || !r.alive[p.node] {
			continue
		}
		seen[p.node] = true
		out = append(out, p.node)
	}
	return out
}

// Successor returns the alive member that inherits dead's arcs for key
// purposes — the first alive member clockwise from dead's primary point.
// It is the deterministic "who should steal dead's work" answer every node
// with the same alive view computes identically. ok is false when nobody is
// alive or dead is unknown.
func (r *Ring) Successor(dead string) (string, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if _, known := r.alive[dead]; !known || len(r.points) == 0 {
		return "", false
	}
	h := ringHash(fmt.Sprintf("%s#%d", dead, 0))
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash > h })
	for i := 0; i < len(r.points); i++ {
		p := r.points[(start+i)%len(r.points)]
		if p.node != dead && r.alive[p.node] {
			return p.node, true
		}
	}
	return "", false
}
