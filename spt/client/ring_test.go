package client

import (
	"fmt"
	"testing"
)

func TestRouteKeyDefaultsScale(t *testing.T) {
	if k := RouteKey("parser", 0); k != "parser/1" {
		t.Fatalf("RouteKey(parser, 0) = %q", k)
	}
	if k := RouteKey("parser", -3); k != "parser/1" {
		t.Fatalf("RouteKey(parser, -3) = %q", k)
	}
	if k := RouteKey("mcf", 4); k != "mcf/4" {
		t.Fatalf("RouteKey(mcf, 4) = %q", k)
	}
}

func ringTestKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = RouteKey(fmt.Sprintf("bench%03d", i%40), 1+i/40)
	}
	return keys
}

func TestRingOwnersAgreeAcrossViews(t *testing.T) {
	a := NewRing([]string{"n1", "n2", "n3"}, 0)
	b := NewRing([]string{"n3", "n1", "n2"}, 0) // construction order is irrelevant
	for _, k := range ringTestKeys(400) {
		oa, oka := a.Owner(k)
		ob, okb := b.Owner(k)
		if !oka || !okb || oa != ob {
			t.Fatalf("views disagree on %q: (%s,%v) vs (%s,%v)", k, oa, oka, ob, okb)
		}
	}
}

func TestRingDeadReshardMovesOnlyDeadArcs(t *testing.T) {
	r := NewRing([]string{"n1", "n2", "n3"}, 0)
	keys := ringTestKeys(600)
	orig := make(map[string]string, len(keys))
	owned := map[string]int{}
	for _, k := range keys {
		o, ok := r.Owner(k)
		if !ok {
			t.Fatalf("no owner for %q", k)
		}
		orig[k] = o
		owned[o]++
	}
	// 64 virtual points per node keep the split close enough to even that
	// every node owns some of 600 keys.
	for _, n := range []string{"n1", "n2", "n3"} {
		if owned[n] == 0 {
			t.Fatalf("node %s owns nothing: %v", n, owned)
		}
	}

	r.SetAlive("n2", false)
	for _, k := range keys {
		o, ok := r.Owner(k)
		if !ok || o == "n2" {
			t.Fatalf("dead node still owns %q (%s, %v)", k, o, ok)
		}
		if orig[k] != "n2" && o != orig[k] {
			t.Fatalf("key %q moved from %s to %s though its owner is alive", k, orig[k], o)
		}
	}

	// Revival reclaims exactly the original arcs.
	r.SetAlive("n2", true)
	for _, k := range keys {
		if o, _ := r.Owner(k); o != orig[k] {
			t.Fatalf("after revival %q owned by %s, want %s", k, o, orig[k])
		}
	}
}

func TestRingOwnerNoneAlive(t *testing.T) {
	r := NewRing([]string{"a", "b"}, 8)
	r.SetAlive("a", false)
	r.SetAlive("b", false)
	if o, ok := r.Owner("x/1"); ok {
		t.Fatalf("owner %q on a fully dead ring", o)
	}
	if _, ok := NewRing(nil, 0).Owner("x/1"); ok {
		t.Fatal("owner on an empty ring")
	}
	// Unknown names are ignored, not added.
	r.SetAlive("ghost", true)
	if _, ok := r.Owner("x/1"); ok {
		t.Fatal("SetAlive invented a member")
	}
}

func TestRingSuccessorDeterministic(t *testing.T) {
	r1 := NewRing([]string{"n1", "n2", "n3"}, 0)
	r2 := NewRing([]string{"n2", "n3", "n1"}, 0)
	s1, ok1 := r1.Successor("n2")
	s2, ok2 := r2.Successor("n2")
	if !ok1 || !ok2 || s1 != s2 || s1 == "n2" {
		t.Fatalf("successor views disagree: (%s,%v) vs (%s,%v)", s1, ok1, s2, ok2)
	}
	// The answer survives the death it is consulted for.
	r1.SetAlive("n2", false)
	if s, ok := r1.Successor("n2"); !ok || s != s1 {
		t.Fatalf("successor changed when n2 died: %s, want %s", s, s1)
	}
	if _, ok := r1.Successor("ghost"); ok {
		t.Fatal("successor for an unknown member")
	}
}

// TestRingAddConvergesWithConstruction: a ring grown with Add answers
// identically to one constructed with the full member list — joins need no
// coordination because point positions depend only on the name.
func TestRingAddConvergesWithConstruction(t *testing.T) {
	grown := NewRing([]string{"n1"}, 0)
	grown.Add("n2")
	grown.Add("n3")
	grown.Add("n3") // idempotent
	full := NewRing([]string{"n1", "n2", "n3"}, 0)
	for _, k := range ringTestKeys(400) {
		og, okg := grown.Owner(k)
		of, okf := full.Owner(k)
		if !okg || !okf || og != of {
			t.Fatalf("grown ring disagrees on %q: (%s,%v) vs (%s,%v)", k, og, okg, of, okf)
		}
	}
	// An added node is routable immediately.
	owned := map[string]int{}
	for _, k := range ringTestKeys(600) {
		o, _ := grown.Owner(k)
		owned[o]++
	}
	if owned["n2"] == 0 || owned["n3"] == 0 {
		t.Fatalf("added nodes own nothing: %v", owned)
	}
}

func TestRingSuccessorsDistinctAliveClockwise(t *testing.T) {
	r := NewRing([]string{"n1", "n2", "n3", "n4"}, 0)
	for _, k := range ringTestKeys(100) {
		succ := r.Successors(k, 2)
		if len(succ) != 2 || succ[0] == succ[1] {
			t.Fatalf("Successors(%q, 2) = %v", k, succ)
		}
		if owner, _ := r.Owner(k); succ[0] != owner {
			t.Fatalf("replica set of %q does not start at its owner: %v vs %s", k, succ, owner)
		}
	}
	// Dead members never appear in a replica set.
	r.SetAlive("n2", false)
	for _, k := range ringTestKeys(100) {
		for _, n := range r.Successors(k, 3) {
			if n == "n2" {
				t.Fatalf("dead member in replica set of %q", k)
			}
		}
	}
	// n larger than the alive membership returns everyone alive once.
	succ := r.Successors("x/1", 10)
	if len(succ) != 3 {
		t.Fatalf("Successors over-asked = %v, want the 3 alive members", succ)
	}
	seen := map[string]bool{}
	for _, n := range succ {
		if seen[n] {
			t.Fatalf("duplicate %s in %v", n, succ)
		}
		seen[n] = true
	}
	if r2 := NewRing(nil, 0); r2.Successors("x/1", 2) != nil {
		t.Fatal("successors on an empty ring")
	}
}
