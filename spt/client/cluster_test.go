package client

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// fakeNode serves a minimal sptd surface: every submit answers with the
// node's name in job_id, and GET /v1/jobs/{id} answers from the given set.
func fakeNode(t *testing.T, name string, jobs map[string]string) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if r.Method == http.MethodGet && strings.HasPrefix(r.URL.Path, "/v1/jobs/") {
			id := strings.TrimPrefix(r.URL.Path, "/v1/jobs/")
			state, ok := jobs[id]
			if !ok {
				w.WriteHeader(http.StatusNotFound)
				fmt.Fprintf(w, `{"error":"unknown job %s"}`, id)
				return
			}
			fmt.Fprintf(w, `{"id":%q,"kind":"simulate","state":%q,"outcome":"ok"}`, id, state)
			return
		}
		fmt.Fprintf(w, `{"benchmark":"parser","job_id":%q}`, name)
	}))
	t.Cleanup(ts.Close)
	return ts
}

func clusterFor(t *testing.T, members map[string]string) *Cluster {
	t.Helper()
	return NewCluster(members, ClusterConfig{Resilient: ResilientConfig{
		MaxAttempts: 2,
		Backoff:     Backoff{Base: time.Millisecond, Max: 2 * time.Millisecond},
		Seed:        1,
	}})
}

func TestClusterReshardsPastDeadOwner(t *testing.T) {
	tsX := fakeNode(t, "x", nil)
	tsY := fakeNode(t, "y", nil)
	c := clusterFor(t, map[string]string{"x": tsX.URL, "y": tsY.URL})

	key := RouteKey("parser", 1)
	owner, ok := c.Ring().Owner(key)
	if !ok {
		t.Fatal("no owner")
	}
	survivor := "y"
	if owner == "y" {
		survivor = "x"
	}
	// Kill the owner's listener: submissions must reshard to the survivor.
	if owner == "x" {
		tsX.CloseClientConnections()
		tsX.Close()
	} else {
		tsY.CloseClientConnections()
		tsY.Close()
	}

	resp, node, err := c.Simulate(context.Background(), SimulateRequest{Benchmark: "parser"})
	if err != nil {
		t.Fatalf("Simulate after owner death: %v", err)
	}
	if node != survivor || resp.JobID != survivor {
		t.Fatalf("served by %s (job_id %s), want the survivor %s", node, resp.JobID, survivor)
	}
	if c.Ring().IsAlive(owner) {
		t.Fatal("dead owner still on the client ring")
	}
	if st := c.Stats(); st.Attempts < 2 {
		t.Fatalf("stats = %+v, want the failed attempts recorded", st)
	}
}

func TestClusterAppErrorDoesNotReshard(t *testing.T) {
	// Decide ownership first, then hand the owner's name a failing backend:
	// an HTTP 400 proves the node is up, so it must stay on the ring and the
	// error must reach the caller instead of being retried elsewhere.
	ring := NewRing([]string{"x", "y"}, 0)
	key := RouteKey("parser", 1)
	owner, _ := ring.Owner(key)
	other := "y"
	if owner == "y" {
		other = "x"
	}

	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusBadRequest)
		fmt.Fprint(w, `{"error":"unknown benchmark"}`)
	}))
	t.Cleanup(bad.Close)
	good := fakeNode(t, other, nil)

	c := clusterFor(t, map[string]string{owner: bad.URL, other: good.URL})
	_, node, err := c.Simulate(context.Background(), SimulateRequest{Benchmark: "parser"})
	var ae *APIError
	if !errors.As(err, &ae) || ae.StatusCode != http.StatusBadRequest {
		t.Fatalf("err = %v, want the owner's 400", err)
	}
	if node != owner {
		t.Fatalf("error attributed to %s, want %s", node, owner)
	}
	if !c.Ring().IsAlive(owner) {
		t.Fatal("application error killed the node on the ring")
	}
}

func TestJobAnywhereFindsTheAdopter(t *testing.T) {
	// After a steal, the job lives on a survivor that is NOT the key's
	// owner; the scatter must find it and report exactly one holder.
	ring := NewRing([]string{"x", "y"}, 0)
	key := RouteKey("parser", 1)
	owner, _ := ring.Owner(key)
	adopter := "y"
	if owner == "y" {
		adopter = "x"
	}
	const jobID = "n3-j000001"
	ownerTS := fakeNode(t, owner, nil) // healthy, 404s every job
	adopterTS := fakeNode(t, adopter, map[string]string{jobID: StateDone})
	c := clusterFor(t, map[string]string{owner: ownerTS.URL, adopter: adopterTS.URL})

	js, holders, err := c.JobAnywhere(context.Background(), key, jobID)
	if err != nil {
		t.Fatalf("JobAnywhere: %v", err)
	}
	if js.State != StateDone || js.ID != jobID {
		t.Fatalf("found %+v", js)
	}
	if len(holders) != 1 || holders[0] != adopter {
		t.Fatalf("holders = %v, want exactly [%s]", holders, adopter)
	}

	// A job nobody holds is ErrJobNotFound, not a transport failure.
	if _, _, err := c.JobAnywhere(context.Background(), key, "nope"); !errors.Is(err, ErrJobNotFound) {
		t.Fatalf("missing job err = %v, want ErrJobNotFound", err)
	}

	// WaitAnywhere settles on the adopted job despite the owner's 404s.
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	js, err = c.WaitAnywhere(ctx, key, jobID, time.Millisecond)
	if err != nil || js.State != StateDone {
		t.Fatalf("WaitAnywhere = %+v, %v", js, err)
	}
}

// TestClusterRevivesDeadNodeAfterPenalty: a node marked dead by a failed
// call (or MarkDead) returns to routing after ReviveAfter — without
// revival, one transient transport failure would skew this client's ring
// view away from the servers' for the life of the process.
func TestClusterRevivesDeadNodeAfterPenalty(t *testing.T) {
	tsX := fakeNode(t, "x", nil)
	tsY := fakeNode(t, "y", nil)
	c := NewCluster(map[string]string{"x": tsX.URL, "y": tsY.URL}, ClusterConfig{
		Resilient: ResilientConfig{
			MaxAttempts: 2,
			Backoff:     Backoff{Base: time.Millisecond, Max: 2 * time.Millisecond},
			Seed:        1,
		},
		ReviveAfter: 300 * time.Millisecond,
	})

	c.MarkDead("x")
	if c.Ring().IsAlive("x") {
		t.Fatal("MarkDead did not remove the node")
	}
	// Before the penalty elapses a routed call must not revive it.
	if _, _, err := c.Simulate(context.Background(), SimulateRequest{Benchmark: "parser"}); err != nil {
		t.Fatal(err)
	}
	if c.Ring().IsAlive("x") {
		t.Fatal("node revived before ReviveAfter elapsed")
	}

	time.Sleep(350 * time.Millisecond)
	// Any routed entry point past the penalty optimistically revives it.
	if _, _, err := c.Simulate(context.Background(), SimulateRequest{Benchmark: "parser"}); err != nil {
		t.Fatal(err)
	}
	if !c.Ring().IsAlive("x") {
		t.Fatal("dead-marked node never returned to routing")
	}

	// Negative ReviveAfter disables automatic revival; only MarkAlive heals.
	c2 := clusterFor(t, map[string]string{"x": tsX.URL, "y": tsY.URL})
	c2.reviveAfter = -1
	c2.MarkDead("x")
	time.Sleep(5 * time.Millisecond)
	c2.maybeRevive()
	if c2.Ring().IsAlive("x") {
		t.Fatal("ReviveAfter<0 still auto-revived")
	}
	c2.MarkAlive("x")
	if !c2.Ring().IsAlive("x") {
		t.Fatal("MarkAlive did not heal the node")
	}
}

func TestClusterMetricsLabeledByNode(t *testing.T) {
	tsX := fakeNode(t, "x", nil)
	tsY := fakeNode(t, "y", nil)
	c := clusterFor(t, map[string]string{"x": tsX.URL, "y": tsY.URL})
	if _, _, err := c.Simulate(context.Background(), SimulateRequest{Benchmark: "parser"}); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	c.WriteMetrics(&sb)
	out := sb.String()
	for _, want := range []string{`node="x"`, `node="y"`, "spt_client_attempts_total"} {
		if !strings.Contains(out, want) {
			t.Fatalf("metrics missing %q:\n%s", want, out)
		}
	}
}

// TestClusterRefreshLearnsJoinedNode: a long-lived client pulls the gossip-
// backed view and starts routing to a member it was never configured with;
// dead members leave its ring, suspect members stay routable.
func TestClusterRefreshLearnsJoinedNode(t *testing.T) {
	tsZ := fakeNode(t, "z", nil)
	var view string
	tsX := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if r.URL.Path == "/v1/cluster" {
			fmt.Fprint(w, view)
			return
		}
		fmt.Fprint(w, `{"benchmark":"parser","job_id":"x"}`)
	}))
	t.Cleanup(tsX.Close)
	view = fmt.Sprintf(`{
		"self":"x","members":{"x":%q,"z":%q},"alive":["x","z"],
		"gossip":[
			{"name":"x","url":%q,"state":"alive","incarnation":1},
			{"name":"y","state":"dead","incarnation":4},
			{"name":"z","url":%q,"state":"suspect","incarnation":2}
		]}`, tsX.URL, tsZ.URL, tsX.URL, tsZ.URL)

	c := clusterFor(t, map[string]string{"x": tsX.URL, "y": "http://127.0.0.1:1"})
	if err := c.Refresh(context.Background()); err != nil {
		t.Fatalf("Refresh: %v", err)
	}
	// z joined: known, routable, and served by its own URL.
	if c.Node("z") == nil || c.URL("z") != tsZ.URL {
		t.Fatalf("joined node not adopted: node=%v url=%q", c.Node("z"), c.URL("z"))
	}
	if !c.Ring().IsAlive("z") {
		t.Fatal("suspect member was routed away from (suspect must stay routable)")
	}
	// y is dead per gossip: off the ring without any failed call.
	if c.Ring().IsAlive("y") {
		t.Fatal("gossip-dead member still routable")
	}
	// Work whose ring owner is z reaches z's listener.
	var bench string
	for _, cand := range []string{"parser", "mcf", "gzip", "twolf", "vortex", "vpr", "gcc", "gap", "art"} {
		if o, ok := c.Ring().Owner(RouteKey(cand, 1)); ok && o == "z" {
			bench = cand
			break
		}
	}
	if bench == "" {
		t.Skip("no candidate benchmark routes to z on this ring")
	}
	resp, served, err := c.Simulate(context.Background(), SimulateRequest{Benchmark: bench})
	if err != nil {
		t.Fatal(err)
	}
	if served != "z" || resp.JobID != "z" {
		t.Fatalf("served by %s (job %s), want the joined node z", served, resp.JobID)
	}
}

// TestApplyViewLegacyFallback: a view without gossip rows (pre-gossip
// server) still applies membership and liveness.
func TestApplyViewLegacyFallback(t *testing.T) {
	c := clusterFor(t, map[string]string{"x": "http://127.0.0.1:1"})
	c.ApplyView(&ClusterView{
		Self:    "x",
		Members: map[string]string{"x": "http://127.0.0.1:1", "w": "http://127.0.0.1:2"},
		Alive:   []string{"w"},
	})
	if c.Node("w") == nil {
		t.Fatal("legacy member not adopted")
	}
	if !c.Ring().IsAlive("w") || c.Ring().IsAlive("x") {
		t.Fatalf("legacy liveness not applied: w=%v x=%v", c.Ring().IsAlive("w"), c.Ring().IsAlive("x"))
	}
	c.ApplyView(nil) // must not panic
}
