package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// Client talks to one sptd daemon. The zero value is not usable; construct
// with New. Client is safe for concurrent use.
type Client struct {
	base string
	http *http.Client
}

// New returns a client for the daemon at baseURL (e.g.
// "http://127.0.0.1:8750"). httpClient may be nil for http.DefaultClient.
func New(baseURL string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	return &Client{base: strings.TrimRight(baseURL, "/"), http: httpClient}
}

// post submits body to path and decodes a 2xx JSON response into out.
// Non-2xx responses come back as *APIError.
func (c *Client) post(ctx context.Context, path string, body, out any) error {
	data, err := json.Marshal(body)
	if err != nil {
		return fmt.Errorf("client: encode request: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(data))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	return c.do(req, out)
}

// get fetches path and decodes a 2xx JSON response into out.
func (c *Client) get(ctx context.Context, path string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return err
	}
	return c.do(req, out)
}

func (c *Client) do(req *http.Request, out any) error {
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		// A truncated or reset body is a transport failure just like a failed
		// dial: wrap (not replace) so IsRetryable can classify it.
		return fmt.Errorf("client: read response body: %w", err)
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		ae := &APIError{StatusCode: resp.StatusCode}
		_ = json.Unmarshal(data, &ae.Body)
		if ae.Body.Error == "" {
			ae.Body.Error = strings.TrimSpace(string(data))
		}
		if ra := resp.Header.Get("Retry-After"); ra != "" {
			if n, err := strconv.Atoi(ra); err == nil {
				ae.RetryAfterSeconds = n
			}
		}
		return ae
	}
	if out == nil {
		return nil
	}
	if err := json.Unmarshal(data, out); err != nil {
		return fmt.Errorf("client: decode response: %w", err)
	}
	return nil
}

// Compile submits a compile job. For synchronous requests the full response
// is returned; for async requests only JobID is populated — poll with Job
// or Wait.
func (c *Client) Compile(ctx context.Context, req CompileRequest) (*CompileResponse, error) {
	var out CompileResponse
	if err := c.post(ctx, "/v1/compile", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Simulate submits a simulate job (baseline + SPT evaluation).
func (c *Client) Simulate(ctx context.Context, req SimulateRequest) (*SimulateResponse, error) {
	var out SimulateResponse
	if err := c.post(ctx, "/v1/simulate", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Sweep submits an ablation sweep job.
func (c *Client) Sweep(ctx context.Context, req SweepRequest) (*SweepResponse, error) {
	var out SweepResponse
	if err := c.post(ctx, "/v1/sweep", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Job fetches the current status of an async job.
func (c *Client) Job(ctx context.Context, id string) (*JobStatus, error) {
	var out JobStatus
	if err := c.get(ctx, "/v1/jobs/"+id, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Wait polls an async job until it reaches StateDone (or ctx ends),
// sleeping poll between requests (0 means 50ms).
func (c *Client) Wait(ctx context.Context, id string, poll time.Duration) (*JobStatus, error) {
	if poll <= 0 {
		poll = 50 * time.Millisecond
	}
	t := time.NewTicker(poll)
	defer t.Stop()
	for {
		js, err := c.Job(ctx, id)
		if err != nil {
			return nil, err
		}
		if js.State == StateDone {
			return js, nil
		}
		select {
		case <-ctx.Done():
			return js, ctx.Err()
		case <-t.C:
		}
	}
}

// ClusterView fetches GET /v1/cluster — the node's membership table and
// replication health. Only clustered daemons serve it; standalone nodes
// answer 404.
func (c *Client) ClusterView(ctx context.Context) (*ClusterView, error) {
	var out ClusterView
	if err := c.get(ctx, "/v1/cluster", &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Health fetches /healthz.
func (c *Client) Health(ctx context.Context) (*Health, error) {
	var out Health
	if err := c.get(ctx, "/healthz", &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Metrics fetches the raw /metrics exposition text.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/metrics", nil)
	if err != nil {
		return "", err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return "", fmt.Errorf("client: read response body: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		return "", &APIError{StatusCode: resp.StatusCode, Body: ErrorBody{Error: strings.TrimSpace(string(data))}}
	}
	return string(data), nil
}

// MetricValue extracts one sample from Prometheus exposition text: the
// value of the first line whose name (and label set, when the name carries
// one, e.g. `sptd_jobs_total{outcome="ok"}`) matches exactly. ok is false
// when the metric is absent.
func MetricValue(metrics, name string) (v float64, ok bool) {
	for _, line := range strings.Split(metrics, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 || fields[0] != name {
			continue
		}
		f, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return 0, false
		}
		return f, true
	}
	return 0, false
}
