// Package client is the typed Go client of the sptd daemon (cmd/sptd): a
// simulation-as-a-service layer over the SPT compile → profile → baseline →
// simulate pipeline. The wire types in this file are the single source of
// truth for the HTTP/JSON API — the daemon's handlers (internal/service)
// encode and decode exactly these structs.
package client

import (
	"encoding/json"
	"fmt"
)

// Priority is a job's admission class. Higher classes are dequeued first;
// within a class jobs run in arrival order. The empty string means
// PriorityNormal.
type Priority string

// The three priority classes of the sptd job queue.
const (
	PriorityHigh   Priority = "high"
	PriorityNormal Priority = "normal"
	PriorityLow    Priority = "low"
)

// JobRequest carries the fields common to every job-submitting endpoint.
type JobRequest struct {
	// Priority selects the queue class (default "normal").
	Priority Priority `json:"priority,omitempty"`
	// Async, when true, returns 202 with a job id immediately; poll
	// GET /v1/jobs/{id} for the result. Synchronous requests block until
	// the job finishes and are canceled when the client disconnects.
	Async bool `json:"async,omitempty"`
	// TimeoutMS bounds each pipeline stage's wall clock (0 = server default).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Steps bounds the simulated program's dynamic instructions (0 = server
	// default).
	Steps int64 `json:"steps,omitempty"`
	// Cycles bounds each simulation's cycles (0 = server default).
	Cycles int64 `json:"cycles,omitempty"`
}

// CompileRequest asks for an SPT compilation of one benchmark.
type CompileRequest struct {
	Benchmark string `json:"benchmark"`
	Scale     int    `json:"scale,omitempty"` // default 1
	JobRequest
}

// LoopSummary is one candidate loop of a compile report.
type LoopSummary struct {
	Func     string  `json:"func"`
	Header   string  `json:"header"`
	Selected bool    `json:"selected"`
	Coverage float64 `json:"coverage"`
	BodySize float64 `json:"body_size"`
	Reason   string  `json:"reason,omitempty"` // rejection reason when not selected
}

// CompileResponse is the result of a compile job.
type CompileResponse struct {
	JobID         string        `json:"job_id"`
	Benchmark     string        `json:"benchmark"`
	Scale         int           `json:"scale"`
	Fingerprint   string        `json:"fingerprint"` // content hash of the transformed program
	SelectedLoops int           `json:"selected_loops"`
	Loops         []LoopSummary `json:"loops"`
}

// SimulateRequest asks for a baseline + SPT evaluation of one benchmark.
// The configuration knobs mirror the sptsim flags; zero values mean the
// Table 1 defaults.
type SimulateRequest struct {
	Benchmark string `json:"benchmark"`
	Scale     int    `json:"scale,omitempty"`    // default 1
	Recovery  string `json:"recovery,omitempty"` // "srxfc" | "squash"
	RegCheck  string `json:"regcheck,omitempty"` // "value" | "update"
	SRB       int    `json:"srb,omitempty"`      // speculation result buffer entries
	// Cores is the total CMP core count (0 and 2 are the classic paper
	// machine; 3+ enables chained multi-threaded speculation).
	Cores int `json:"cores,omitempty"`
	// Sched selects the spec-thread scheduling policy:
	// "inorder" | "stride" | "eager" (default inorder).
	Sched string `json:"sched,omitempty"`
	// Stride is the iteration lookahead per spawn for Sched "stride".
	Stride int `json:"stride,omitempty"`
	// LiveIn selects live-in delivery: "svp" | "slice" (default svp).
	LiveIn string `json:"livein,omitempty"`
	JobRequest
}

// SimSummary is the flattened result of one simulation run.
type SimSummary struct {
	Cycles      int64 `json:"cycles"`
	Instrs      int64 `json:"instrs"`
	Exec        int64 `json:"exec"`
	PipeStall   int64 `json:"pipe_stall"`
	DcacheStall int64 `json:"dcache_stall"`

	Windows        int64 `json:"windows,omitempty"`
	FastCommits    int64 `json:"fast_commits,omitempty"`
	Replays        int64 `json:"replays,omitempty"`
	Kills          int64 `json:"kills,omitempty"`
	SpecInstrs     int64 `json:"spec_instrs,omitempty"`
	MisspecInstrs  int64 `json:"misspec_instrs,omitempty"`
	CommittedInstr int64 `json:"committed_instrs,omitempty"`
}

// SimulateResponse is the result of a simulate job.
type SimulateResponse struct {
	JobID     string     `json:"job_id"`
	Benchmark string     `json:"benchmark"`
	Scale     int        `json:"scale"`
	Baseline  SimSummary `json:"baseline"`
	SPT       SimSummary `json:"spt"`
	Speedup   float64    `json:"speedup"`
}

// SweepRequest asks for one of the Table 1 ablation sweeps.
type SweepRequest struct {
	Benchmark string `json:"benchmark"`
	Scale     int    `json:"scale,omitempty"`
	// Sweep selects the variant family: "recovery" | "regcheck" | "srb" |
	// "overhead" | "cores" | "sched" | "livein".
	Sweep string `json:"sweep"`
	// Points parameterizes "srb" (buffer sizes), "overhead" (RF-copy
	// cycles), "cores" (core counts) and "sched" (strides); ignored by the
	// fixed-variant sweeps.
	Points []int `json:"points,omitempty"`
	// Cores fixes the core count for the "sched" and "livein" families
	// (default 4); ignored elsewhere.
	Cores int `json:"cores,omitempty"`
	JobRequest
}

// SweepRow is one variant's outcome. A variant that fails (budget
// exhaustion, simulation error) carries its error here with Speedup zero;
// healthy siblings in the same sweep are unaffected.
type SweepRow struct {
	Variant string  `json:"variant"`
	Speedup float64 `json:"speedup"`
	Error   string  `json:"error,omitempty"`
}

// SweepResponse is the result of a sweep job.
type SweepResponse struct {
	JobID     string     `json:"job_id"`
	Benchmark string     `json:"benchmark"`
	Scale     int        `json:"scale"`
	Sweep     string     `json:"sweep"`
	Rows      []SweepRow `json:"rows"`
}

// Job lifecycle states reported by GET /v1/jobs/{id}. StateRetryable marks
// a journaled async job between a failed (or crash-interrupted) attempt and
// its re-execution.
const (
	StateQueued    = "queued"
	StateRunning   = "running"
	StateRetryable = "retryable"
	StateDone      = "done"
)

// Job outcomes (meaningful once State == StateDone).
const (
	OutcomeOK       = "ok"
	OutcomeFailed   = "failed"
	OutcomeCanceled = "canceled"
)

// JobStatus is the polling view of a job.
type JobStatus struct {
	ID      string `json:"id"`
	Kind    string `json:"kind"` // "compile" | "simulate" | "sweep"
	State   string `json:"state"`
	Outcome string `json:"outcome,omitempty"`
	// Attempts counts completed executions beyond the first for durable
	// async jobs (retries after failures or daemon restarts).
	Attempts int             `json:"attempts,omitempty"`
	Error    *ErrorBody      `json:"error,omitempty"`
	Result   json.RawMessage `json:"result,omitempty"`
}

// DecodeResult unmarshals the job's result into v (a *CompileResponse,
// *SimulateResponse or *SweepResponse matching the job's Kind).
func (js *JobStatus) DecodeResult(v any) error {
	if js.Result == nil {
		return fmt.Errorf("client: job %s has no result (state %s, outcome %s)", js.ID, js.State, js.Outcome)
	}
	return json.Unmarshal(js.Result, v)
}

// ErrorBody is the structured error payload of every non-2xx response.
type ErrorBody struct {
	Error          string `json:"error"`
	Stage          string `json:"stage,omitempty"`
	BudgetExceeded bool   `json:"budget_exceeded,omitempty"`
	Panicked       bool   `json:"panicked,omitempty"`
}

// Health is the GET /healthz payload (also the /readyz body, where the
// HTTP status additionally encodes readiness: 200 ready, 503 not).
type Health struct {
	// Status is "ok" when the node is serving, otherwise the dominant
	// not-ready condition: "draining" | "journal-replay" | "store-degraded".
	Status   string `json:"status"`
	Ready    bool   `json:"ready"`
	Draining bool   `json:"draining"`
	// Conditions lists every active not-ready condition (Status is the
	// first); empty when serving normally.
	Conditions []string `json:"conditions,omitempty"`
	// Node is the cluster node name (empty for a standalone daemon).
	Node       string `json:"node,omitempty"`
	QueueDepth int    `json:"queue_depth"`
	InFlight   int    `json:"in_flight"`
	Workers    int    `json:"workers"`
	UptimeMS   int64  `json:"uptime_ms"`
}

// ClusterMember is one row of the gossip membership table as surfaced by
// GET /v1/cluster.
type ClusterMember struct {
	Name string `json:"name"`
	URL  string `json:"url,omitempty"`
	// State is "alive", "suspect" or "dead". Suspect members are still
	// routable: one observer failing to reach a node is not a death.
	State       string `json:"state"`
	Incarnation uint64 `json:"incarnation"`
}

// ClusterView is the GET /v1/cluster payload: static membership and
// liveness (pre-gossip fields, kept for compatibility) plus the gossip
// member table and replication health, so operators and soak harnesses can
// assert convergence instead of sleeping.
type ClusterView struct {
	Self    string            `json:"self"`
	Members map[string]string `json:"members"`
	Alive   []string          `json:"alive"`
	Stolen  []string          `json:"stolen,omitempty"`
	// Gossip is the per-peer membership table (empty on pre-gossip nodes).
	Gossip []ClusterMember `json:"gossip,omitempty"`
	// StoreDegraded mirrors the store's disk-tier health flag.
	StoreDegraded bool `json:"store_degraded,omitempty"`
	// QuarantineBytes is the size of the capped corrupt-file quarantine.
	QuarantineBytes int64 `json:"quarantine_bytes,omitempty"`
	// ReplicationPending counts store keys still awaiting a successful
	// replica push — zero means every local artifact is replicated.
	ReplicationPending int `json:"replication_pending"`
}

// APIError is a non-2xx daemon response surfaced as a Go error.
type APIError struct {
	StatusCode int
	// RetryAfterSeconds is set from the Retry-After header on 429/503
	// responses; 0 when absent.
	RetryAfterSeconds int
	Body              ErrorBody
}

// Error implements the error interface.
func (e *APIError) Error() string {
	msg := e.Body.Error
	if msg == "" {
		msg = "request failed"
	}
	return fmt.Sprintf("sptd: HTTP %d: %s", e.StatusCode, msg)
}

// IsBackpressure reports whether err is the daemon shedding load: a 429
// (queue full) or 503 (draining) that the caller should retry after
// RetryAfterSeconds.
func IsBackpressure(err error) bool {
	ae, ok := err.(*APIError)
	return ok && (ae.StatusCode == 429 || ae.StatusCode == 503)
}
