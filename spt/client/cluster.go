package client

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"
)

// ErrNoAliveNodes is returned when every cluster member is marked dead.
var ErrNoAliveNodes = errors.New("client: no alive cluster nodes")

// ErrJobNotFound is returned by JobAnywhere when no alive node knows the
// job id — either it never existed or its owner died before journaling it.
var ErrJobNotFound = errors.New("client: job not found on any alive node")

// ClusterConfig tunes a Cluster client. The zero value takes the defaults.
type ClusterConfig struct {
	// Resilient configures the per-node resilient wrapper (retries,
	// breakers, hedging).
	Resilient ResilientConfig
	// HTTPClient is shared by every node's underlying Client (nil =
	// http.DefaultClient).
	HTTPClient *http.Client
	// RingReplicas overrides the virtual-node count (0 = DefaultRingReplicas).
	RingReplicas int
	// ReviveAfter is how long a node marked dead by a failed call stays out
	// of routing before it is optimistically retried (0 = DefaultReviveAfter,
	// negative = never revive automatically). Without revival, one transient
	// transport failure would skew this client's routing away from the
	// server-side ring view for the life of the process.
	ReviveAfter time.Duration
}

// DefaultReviveAfter is how long a dead-marked node is skipped before the
// client optimistically routes to it again.
const DefaultReviveAfter = 5 * time.Second

// Cluster routes requests across a set of sptd nodes with client-side
// consistent hashing: every submission for the same program lands on the
// same node, so identical work coalesces cluster-wide instead of being
// recomputed once per node. Each member gets its own Resilient wrapper
// (per-node breakers: one dead node must not open the circuit to its
// siblings). When the owner of a key stops answering, the node is marked
// dead on the ring and the request re-routes to the key's new owner; polls
// for jobs the dead node accepted fall back to a scatter across the
// survivors, which is how a stolen job is found on whichever node adopted
// it. Cluster is safe for concurrent use.
type Cluster struct {
	ring *Ring
	cfg  ClusterConfig

	reviveAfter time.Duration
	mu          sync.Mutex
	nodes       map[string]*Resilient
	urls        map[string]string
	seedIdx     int                  // decorrelates Resilient jitter across AddNode calls
	deadSince   map[string]time.Time // when each dead-marked node left the ring
}

// NewCluster builds a cluster client over name → base-URL members.
func NewCluster(members map[string]string, cfg ClusterConfig) *Cluster {
	names := make([]string, 0, len(members))
	for n := range members {
		names = append(names, n)
	}
	sort.Strings(names)
	revive := cfg.ReviveAfter
	if revive == 0 {
		revive = DefaultReviveAfter
	}
	c := &Cluster{
		ring:        NewRing(names, cfg.RingReplicas),
		cfg:         cfg,
		nodes:       make(map[string]*Resilient, len(members)),
		urls:        make(map[string]string, len(members)),
		reviveAfter: revive,
		deadSince:   make(map[string]time.Time),
	}
	for i, n := range names {
		rcfg := cfg.Resilient
		if rcfg.Seed != 0 {
			// Decorrelate per-node jitter while keeping the whole cluster
			// client deterministic under one seed.
			rcfg.Seed += int64(i) + 1
		}
		c.nodes[n] = NewResilient(New(members[n], cfg.HTTPClient), rcfg)
		c.urls[n] = members[n]
		c.seedIdx = i + 1
	}
	return c
}

// AddNode adds a member discovered at runtime (the gossip-join path) to
// the routing ring with its own resilient wrapper. Adding a known name is
// a no-op, so Refresh can re-apply a cluster view idempotently.
func (c *Cluster) AddNode(name, baseURL string) {
	if name == "" || baseURL == "" {
		return
	}
	c.mu.Lock()
	if _, ok := c.nodes[name]; ok {
		c.mu.Unlock()
		return
	}
	rcfg := c.cfg.Resilient
	if rcfg.Seed != 0 {
		c.seedIdx++
		rcfg.Seed += int64(c.seedIdx)
	}
	c.nodes[name] = NewResilient(New(baseURL, c.cfg.HTTPClient), rcfg)
	c.urls[name] = baseURL
	c.mu.Unlock()
	c.ring.Add(name)
}

// Ring exposes the routing ring (tests, manual resharding).
func (c *Cluster) Ring() *Ring { return c.ring }

// Node returns the resilient client of one member (nil for unknown names).
func (c *Cluster) Node(name string) *Resilient {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.nodes[name]
}

// URL returns the base URL of one member.
func (c *Cluster) URL(name string) string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.urls[name]
}

// MarkDead removes a node from routing; it returns after ReviveAfter (or
// at MarkAlive), and its keys reshard to the ring successors meanwhile.
func (c *Cluster) MarkDead(name string) { c.markDead(name) }

// MarkAlive returns a node to routing immediately; it reclaims exactly the
// arcs it owned before.
func (c *Cluster) MarkAlive(name string) {
	c.mu.Lock()
	delete(c.deadSince, name)
	c.mu.Unlock()
	c.ring.SetAlive(name, true)
}

// markDead takes a node out of routing and stamps the time so maybeRevive
// can optimistically return it after the ReviveAfter penalty. The earliest
// stamp wins: repeated marks while already dead must not postpone revival.
func (c *Cluster) markDead(name string) {
	c.mu.Lock()
	if _, ok := c.deadSince[name]; !ok {
		c.deadSince[name] = time.Now()
	}
	c.mu.Unlock()
	c.ring.SetAlive(name, false)
}

// maybeRevive returns dead-marked nodes to routing once they have served
// their ReviveAfter penalty. Revival is optimistic: a node that is still
// down fails its next call and is re-marked, at the cost of one probe whose
// blast radius the per-node breaker bounds. Every routed entry point calls
// this first, so a recovered node rejoins this client's ring without any
// manual MarkAlive.
func (c *Cluster) maybeRevive() {
	if c.reviveAfter <= 0 {
		return
	}
	now := time.Now()
	c.mu.Lock()
	var up []string
	for name, since := range c.deadSince {
		if now.Sub(since) >= c.reviveAfter {
			delete(c.deadSince, name)
			up = append(up, name)
		}
	}
	c.mu.Unlock()
	for _, name := range up {
		c.ring.SetAlive(name, true)
	}
}

// isNodeDown classifies an error from a node's resilient client as "the
// node is not answering" (transport failure, open breaker, retries
// exhausted on transport) as opposed to "the node answered with an
// application error". An HTTP response — any status — proves the node is
// up, so *APIError never marks it dead. Context expiry is the caller's
// clock, not the node's health.
func isNodeDown(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var ae *APIError
	return !errors.As(err, &ae)
}

// route runs fn against the alive owner of key, resharding on node death:
// when the owner stops answering it is marked dead and the call moves to
// the key's next owner. At most one pass over the membership.
func route[T any](c *Cluster, ctx context.Context, key string, fn func(ctx context.Context, node string, r *Resilient) (T, error)) (T, string, error) {
	var zero T
	var lastErr error
	c.maybeRevive()
	c.mu.Lock()
	passes := len(c.nodes)
	c.mu.Unlock()
	for i := 0; i < passes; i++ {
		owner, ok := c.ring.Owner(key)
		if !ok {
			if lastErr != nil {
				return zero, "", fmt.Errorf("%w (last error: %v)", ErrNoAliveNodes, lastErr)
			}
			return zero, "", ErrNoAliveNodes
		}
		v, err := fn(ctx, owner, c.Node(owner))
		if err == nil {
			return v, owner, nil
		}
		lastErr = err
		if !isNodeDown(err) {
			return zero, owner, err
		}
		c.markDead(owner)
	}
	return zero, "", fmt.Errorf("%w (last error: %v)", ErrNoAliveNodes, lastErr)
}

// Simulate submits a simulate request to the owner of its route key,
// resharding past dead nodes. It returns the response and the node that
// served it.
func (c *Cluster) Simulate(ctx context.Context, req SimulateRequest) (*SimulateResponse, string, error) {
	return route(c, ctx, RouteKey(req.Benchmark, req.Scale), func(ctx context.Context, _ string, r *Resilient) (*SimulateResponse, error) {
		return r.Simulate(ctx, req)
	})
}

// Compile submits a compile request to the owner of its route key.
func (c *Cluster) Compile(ctx context.Context, req CompileRequest) (*CompileResponse, string, error) {
	return route(c, ctx, RouteKey(req.Benchmark, req.Scale), func(ctx context.Context, _ string, r *Resilient) (*CompileResponse, error) {
		return r.Compile(ctx, req)
	})
}

// Sweep submits a sweep request to the owner of its route key.
func (c *Cluster) Sweep(ctx context.Context, req SweepRequest) (*SweepResponse, string, error) {
	return route(c, ctx, RouteKey(req.Benchmark, req.Scale), func(ctx context.Context, _ string, r *Resilient) (*SweepResponse, error) {
		return r.Sweep(ctx, req)
	})
}

// is404 reports a "job unknown here" answer — the node is healthy but does
// not hold the job.
func is404(err error) bool {
	var ae *APIError
	return errors.As(err, &ae) && ae.StatusCode == http.StatusNotFound
}

// JobAnywhere polls job id, asking the owner of the submission's route key
// first and falling back to a scatter across every alive node. The scatter
// is the bounded-ring-drift path: after a crash the job may have been
// adopted by whichever survivor stole the dead node's journal, which is not
// necessarily the key's new owner. holders reports every alive node that
// knew the job — exactly-once adoption means len(holders) == 1.
func (c *Cluster) JobAnywhere(ctx context.Context, key, id string) (js *JobStatus, holders []string, err error) {
	c.maybeRevive()
	if owner, ok := c.ring.Owner(key); ok {
		js, err := c.Node(owner).Job(ctx, id)
		if err == nil {
			return js, []string{owner}, nil
		}
		if isNodeDown(err) {
			c.markDead(owner)
		} else if !is404(err) {
			return nil, nil, err
		}
	}
	var first *JobStatus
	var lastErr error
	for _, n := range c.ring.Alive() {
		njs, nerr := c.Node(n).Job(ctx, id)
		switch {
		case nerr == nil:
			holders = append(holders, n)
			if first == nil {
				first = njs
			}
		case is404(nerr):
			// healthy, just not the holder
		case isNodeDown(nerr):
			c.markDead(n)
			lastErr = nerr
		default:
			lastErr = nerr
		}
		if ctx.Err() != nil {
			break
		}
	}
	if first != nil {
		return first, holders, nil
	}
	if lastErr != nil {
		return nil, nil, fmt.Errorf("%w (last error: %v)", ErrJobNotFound, lastErr)
	}
	return nil, nil, ErrJobNotFound
}

// WaitAnywhere polls JobAnywhere until the job settles (or ctx ends),
// riding out node deaths, journal stealing and adoption: a poll that finds
// the job on no node yet (it is mid-steal) retries instead of failing.
func (c *Cluster) WaitAnywhere(ctx context.Context, key, id string, poll time.Duration) (*JobStatus, error) {
	if poll <= 0 {
		poll = 50 * time.Millisecond
	}
	t := time.NewTicker(poll)
	defer t.Stop()
	for {
		js, _, err := c.JobAnywhere(ctx, key, id)
		if err == nil && js.State == StateDone {
			return js, nil
		}
		if err != nil && !errors.Is(err, ErrJobNotFound) && !IsRetryable(err) &&
			!errors.Is(err, ErrNoAliveNodes) && !isNodeDown(err) {
			return nil, err
		}
		select {
		case <-ctx.Done():
			if err != nil {
				return nil, fmt.Errorf("job %s did not converge: %w", id, err)
			}
			return js, ctx.Err()
		case <-t.C:
		}
	}
}

// Health fetches every alive node's health, keyed by node name. Nodes that
// fail to answer are marked dead and omitted.
func (c *Cluster) Health(ctx context.Context) map[string]*Health {
	c.maybeRevive()
	out := make(map[string]*Health)
	for _, n := range c.ring.Alive() {
		h, err := c.Node(n).Health(ctx)
		if err != nil {
			if isNodeDown(err) {
				c.markDead(n)
			}
			continue
		}
		out[n] = h
	}
	return out
}

// Stats aggregates the per-node resilient counters.
func (c *Cluster) Stats() ResilientStats {
	var sum ResilientStats
	c.mu.Lock()
	nodes := make([]*Resilient, 0, len(c.nodes))
	for _, r := range c.nodes {
		nodes = append(nodes, r)
	}
	c.mu.Unlock()
	for _, r := range nodes {
		st := r.Stats()
		sum.Attempts += st.Attempts
		sum.Retries += st.Retries
		sum.Hedges += st.Hedges
		sum.HedgeWins += st.HedgeWins
		sum.BreakerOpens += st.BreakerOpens
		sum.BreakerRecoveries += st.BreakerRecoveries
		sum.BreakerWaits += st.BreakerWaits
	}
	return sum
}

// WriteMetrics renders every node's resilient-client counters as Prometheus
// text, labeled by node.
func (c *Cluster) WriteMetrics(w io.Writer) {
	c.mu.Lock()
	names := make([]string, 0, len(c.nodes))
	for n := range c.nodes {
		names = append(names, n)
	}
	c.mu.Unlock()
	sort.Strings(names)
	for _, n := range names {
		c.Node(n).writeMetricsLabeled(w, fmt.Sprintf("node=%q", n))
	}
}

// Refresh pulls the gossip-backed cluster view from the first alive member
// that answers and applies it: unknown members join the routing ring, dead
// members leave it, alive (and suspect — slow is not gone) members return.
// This is how a long-lived client tracks membership the operator never
// told it about.
func (c *Cluster) Refresh(ctx context.Context) error {
	c.maybeRevive()
	var lastErr error
	for _, n := range c.ring.Alive() {
		view, err := New(c.URL(n), c.cfg.HTTPClient).ClusterView(ctx)
		if err != nil {
			if isNodeDown(err) {
				c.markDead(n)
			}
			lastErr = err
			continue
		}
		c.ApplyView(view)
		return nil
	}
	if lastErr == nil {
		lastErr = ErrNoAliveNodes
	}
	return lastErr
}

// ApplyView folds one cluster view into the routing state. Exported so a
// caller that already fetched a view (soak harnesses, dashboards) can apply
// it without a second fetch. Suspect members stay routable: from this
// client's seat a suspect node answered someone recently, and routing away
// from it early would churn keys the ring is about to hand back.
func (c *Cluster) ApplyView(view *ClusterView) {
	if view == nil {
		return
	}
	if len(view.Gossip) > 0 {
		for _, m := range view.Gossip {
			c.AddNode(m.Name, m.URL)
			if m.State == "dead" {
				c.markDead(m.Name)
			} else {
				c.MarkAlive(m.Name)
			}
		}
		return
	}
	// Pre-gossip servers: membership from the static map, liveness from the
	// alive list.
	alive := make(map[string]bool, len(view.Alive))
	for _, n := range view.Alive {
		alive[n] = true
	}
	for name, url := range view.Members {
		c.AddNode(name, url)
		if alive[name] {
			c.MarkAlive(name)
		} else {
			c.markDead(name)
		}
	}
}
