package client

import (
	"errors"
	"sync"
	"time"
)

// ErrCircuitOpen is returned (wrapped, carrying the last observed failure)
// when a call is refused because the endpoint's circuit breaker is open and
// the caller's context cannot absorb the remaining cool-down.
var ErrCircuitOpen = errors.New("client: circuit breaker open")

// BreakerConfig tunes the per-endpoint circuit breaker. Zero values take
// the defaults.
type BreakerConfig struct {
	// FailureThreshold is how many consecutive breaker-relevant failures
	// (transport errors and 5xx — backpressure 429s never count) open the
	// circuit (default 5).
	FailureThreshold int
	// OpenFor is the cool-down before an open breaker admits probes
	// (default 1s).
	OpenFor time.Duration
	// HalfOpenProbes bounds the concurrent trial requests admitted while
	// half-open (default 1). One probe success closes the circuit; one
	// probe failure re-opens it.
	HalfOpenProbes int
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = 5
	}
	if c.OpenFor <= 0 {
		c.OpenFor = time.Second
	}
	if c.HalfOpenProbes <= 0 {
		c.HalfOpenProbes = 1
	}
	return c
}

// Breaker states.
const (
	breakerClosed = iota
	breakerOpen
	breakerHalfOpen
)

// breaker is one endpoint's circuit breaker: closed → (threshold
// consecutive failures) → open → (cool-down) → half-open → one probe
// success closes / one probe failure re-opens. Time is passed in by the
// caller so tests can drive the state machine without sleeping.
type breaker struct {
	mu       sync.Mutex
	cfg      BreakerConfig
	state    int
	fails    int       // consecutive failures while closed
	openedAt time.Time // when the circuit last opened
	probes   int       // in-flight probes while half-open

	opens      int64 // transitions into open (including re-opens)
	recoveries int64 // half-open probes that closed the circuit
}

func newBreaker(cfg BreakerConfig) *breaker {
	return &breaker{cfg: cfg.withDefaults()}
}

// allow reports whether a call may proceed now. When refused, wait is how
// long until the breaker is worth asking again.
func (b *breaker) allow(now time.Time) (ok bool, wait time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true, 0
	case breakerOpen:
		if until := b.openedAt.Add(b.cfg.OpenFor); now.Before(until) {
			return false, until.Sub(now)
		}
		b.state = breakerHalfOpen
		b.probes = 0
		fallthrough
	default: // half-open
		if b.probes < b.cfg.HalfOpenProbes {
			b.probes++
			return true, 0
		}
		// Probe budget exhausted; wait for an in-flight probe to settle.
		return false, b.cfg.OpenFor / 4
	}
}

// report records the outcome of an admitted call.
func (b *breaker) report(success bool, now time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerHalfOpen:
		if b.probes > 0 {
			b.probes--
		}
		if success {
			b.state = breakerClosed
			b.fails = 0
			b.recoveries++
		} else {
			b.state = breakerOpen
			b.openedAt = now
			b.opens++
		}
	case breakerClosed:
		if success {
			b.fails = 0
			return
		}
		b.fails++
		if b.fails >= b.cfg.FailureThreshold {
			b.state = breakerOpen
			b.openedAt = now
			b.opens++
		}
	}
	// breakerOpen: a straggler from before the trip; nothing to update.
}

// snapshot returns the breaker's lifetime transition counters and its
// current state.
func (b *breaker) snapshot() (opens, recoveries int64, state int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.opens, b.recoveries, b.state
}
