package client

import (
	"fmt"
	"io"
	"net/http"
	"sort"
)

// breakerStateValue renders a breaker state as a numeric gauge:
// 0 closed, 1 open, 2 half-open.
func breakerStateValue(state int) int {
	switch state {
	case breakerOpen:
		return 1
	case breakerHalfOpen:
		return 2
	default:
		return 0
	}
}

// WriteMetrics renders the wrapper's lifetime counters as Prometheus text:
// attempts, retries, hedge launches and wins, breaker waits, and the
// per-endpoint breaker transition counters and live state. Soak harnesses
// and operators scrape this instead of grepping logs to assert, e.g., that
// a circuit opened during an outage and recovered after the restart.
func (r *Resilient) WriteMetrics(w io.Writer) { r.writeMetricsLabeled(w, "") }

// writeMetricsLabeled is WriteMetrics with an extra label pair (e.g.
// `node="n1"`) spliced into every sample — the cluster client renders one
// wrapper per member through this.
func (r *Resilient) writeMetricsLabeled(w io.Writer, extra string) {
	lbl := func(more string) string {
		switch {
		case extra == "" && more == "":
			return ""
		case extra == "":
			return "{" + more + "}"
		case more == "":
			return "{" + extra + "}"
		default:
			return "{" + extra + "," + more + "}"
		}
	}
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s%s %d\n", name, help, name, name, lbl(""), v)
	}
	counter("spt_client_attempts_total", "Requests sent, retries and hedge probes included.", r.attempts.Load())
	counter("spt_client_retries_total", "Attempts beyond each call's first.", r.retries.Load())
	counter("spt_client_hedges_total", "Hedge requests launched for idempotent GETs.", r.hedges.Load())
	counter("spt_client_hedge_wins_total", "Hedge requests that answered before the primary.", r.hedgeWins.Load())
	counter("spt_client_breaker_waits_total", "Attempts delayed because a circuit was open.", r.breakerWaits.Load())

	r.bmu.Lock()
	endpoints := make([]string, 0, len(r.breakers))
	for ep := range r.breakers {
		endpoints = append(endpoints, ep)
	}
	sort.Strings(endpoints)
	type bsnap struct {
		endpoint          string
		opens, recoveries int64
		state             int
	}
	snaps := make([]bsnap, 0, len(endpoints))
	for _, ep := range endpoints {
		o, rec, st := r.breakers[ep].snapshot()
		snaps = append(snaps, bsnap{ep, o, rec, st})
	}
	r.bmu.Unlock()

	fmt.Fprintf(w, "# HELP spt_client_breaker_opens_total Circuit transitions into open, per endpoint.\n# TYPE spt_client_breaker_opens_total counter\n")
	for _, s := range snaps {
		fmt.Fprintf(w, "spt_client_breaker_opens_total%s %d\n", lbl(fmt.Sprintf("endpoint=%q", s.endpoint)), s.opens)
	}
	fmt.Fprintf(w, "# HELP spt_client_breaker_recoveries_total Half-open probes that closed a circuit, per endpoint.\n# TYPE spt_client_breaker_recoveries_total counter\n")
	for _, s := range snaps {
		fmt.Fprintf(w, "spt_client_breaker_recoveries_total%s %d\n", lbl(fmt.Sprintf("endpoint=%q", s.endpoint)), s.recoveries)
	}
	fmt.Fprintf(w, "# HELP spt_client_breaker_state Current breaker state per endpoint: 0 closed, 1 open, 2 half-open.\n# TYPE spt_client_breaker_state gauge\n")
	for _, s := range snaps {
		fmt.Fprintf(w, "spt_client_breaker_state%s %d\n", lbl(fmt.Sprintf("endpoint=%q", s.endpoint)), breakerStateValue(s.state))
	}
}

// MetricsHandler serves WriteMetrics over HTTP, so a load generator or
// sidecar can expose its client-side view (breaker flaps, hedge rates) to
// the same Prometheus that scrapes the daemons.
func (r *Resilient) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WriteMetrics(w)
	})
}
