// Package spt is the public facade of the SPT (Speculative Parallel
// Threading) reproduction: a cost-driven speculative auto-parallelizing
// compiler plus a trace-driven simulator of the paper's two-core SPT
// machine (Li, Du, Yang, Lim, Ngai — ICPP Workshops 2005).
//
// Typical use:
//
//	prog := spt.Benchmark("parser", 1)          // or build your own ir.Program
//	cres, _ := spt.Compile(prog, spt.DefaultCompileOptions())
//	base, _ := spt.Simulate(prog, spt.BaselineMachine())
//	fast, _ := spt.Simulate(cres.Program, spt.DefaultMachine())
//	fmt.Printf("speedup %.2fx\n", float64(base.Cycles)/float64(fast.Cycles))
//
// The full evaluation of the paper's Section 5 (Table 1, Figures 6–9, the
// Figure 1 loop statistics and the Table 1 ablations) is exposed through
// the Eval* functions, which delegate to the internal harness.
package spt

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/bench"
	"repro/internal/compiler"
	"repro/internal/harness"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/lang"
	"repro/internal/opt"
	"repro/internal/profiler"
	"repro/internal/transform"
)

// Re-exported core types. The IR is the compiler's input language; build
// programs with ir.NewProgramBuilder / ir.NewFuncBuilder.
type (
	// Program is an IR program (see repro/internal/ir for the builders).
	Program = ir.Program
	// CompileOptions configures the two-pass cost-driven SPT compiler.
	CompileOptions = compiler.Options
	// CompileResult carries the transformed program and per-loop reports.
	CompileResult = compiler.Result
	// LoopReport describes one candidate loop's analysis and selection.
	LoopReport = compiler.LoopReport
	// MachineConfig is the simulated machine configuration (Table 1).
	MachineConfig = arch.Config
	// RunStats is the result of one simulation.
	RunStats = arch.RunStats
	// LoopStats is the per-loop simulation statistics.
	LoopStats = arch.LoopStats
	// LoopKey identifies a loop by function name and header label.
	LoopKey = profiler.LoopKey
	// Profile is a whole-program profiling result.
	Profile = profiler.Profile
	// BenchRun bundles the baseline and SPT evaluation of one benchmark.
	BenchRun = harness.BenchRun
)

// DefaultCompileOptions returns the paper's compiler settings (1000-entry
// body-size cap, trip-count and estimated-speedup thresholds, unrolling).
func DefaultCompileOptions() CompileOptions { return compiler.DefaultOptions() }

// DefaultMachine returns the Table 1 two-core SPT configuration.
func DefaultMachine() MachineConfig { return arch.DefaultConfig() }

// BaselineMachine returns the single-core reference configuration.
func BaselineMachine() MachineConfig { return arch.BaselineConfig() }

// Compile runs the two-pass cost-driven SPT compiler: profiling, loop
// preprocessing (unrolling), misspeculation-cost-driven optimal partition
// search, global loop selection and SPT code emission. The input program is
// not modified.
func Compile(p *Program, opts CompileOptions) (*CompileResult, error) {
	return compiler.Compile(p, opts)
}

// Simulate runs p on the configured machine and returns cycle-accurate
// statistics. Use BaselineMachine for the single-core reference and
// DefaultMachine (on a compiled program) for the SPT run.
func Simulate(p *Program, cfg MachineConfig) (*RunStats, error) {
	lp, err := interp.Load(p)
	if err != nil {
		return nil, err
	}
	return arch.NewMachine(lp, cfg).Run()
}

// Run executes p sequentially (the architectural reference) and returns its
// result value and dynamic instruction count.
func Run(p *Program) (ret int64, steps int64, err error) {
	lp, err := interp.Load(p)
	if err != nil {
		return 0, 0, err
	}
	m := interp.New(lp)
	res, err := m.Run()
	if err != nil {
		return 0, 0, err
	}
	return res.Ret, res.Steps, nil
}

// Optimize runs the classic scalar optimizer (constant folding and
// propagation, copy propagation, dead-code elimination, unreachable-block
// removal) and returns an optimized copy: the -O3-style baseline of the
// paper's evaluation. Compile applies it automatically when
// CompileOptions.Optimize is set (the default).
func Optimize(p *Program) *Program { return opt.Optimize(p) }

// CollectProfile profiles p (loop coverage, trip counts, dependence and
// value profiles) without simulating timing.
func CollectProfile(p *Program) (*Profile, error) {
	lp, err := interp.Load(p)
	if err != nil {
		return nil, err
	}
	return profiler.Collect(lp, 0)
}

// RegionFork applies region-based speculation (the paper's Section 6
// future-work direction) to a copy of p: the block labelled blockLabel in
// function fn is split at instruction index splitIdx, the first half forks
// a speculative thread that runs the second half, and the hardware checkers
// sort out the cross-half dependences at runtime. The input program is not
// modified.
func RegionFork(p *Program, fn, blockLabel string, splitIdx int) (*Program, error) {
	clone := p.Clone()
	f := clone.Func(fn)
	if f == nil {
		return nil, fmt.Errorf("spt: no function %q", fn)
	}
	if _, err := transform.ApplyRegionFork(f, blockLabel, splitIdx); err != nil {
		return nil, err
	}
	clone.Finalize()
	if err := clone.Validate(); err != nil {
		return nil, err
	}
	return clone, nil
}

// CompileSource compiles MiniC source text (the repository's small C-like
// front-end language; see repro/internal/lang) into an IR program ready for
// Compile and Simulate.
func CompileSource(src string) (*Program, error) { return lang.Compile(src) }

// Benchmarks returns the names of the ten SPECint2000 stand-in workloads.
func Benchmarks() []string { return bench.Names() }

// Benchmark builds the named synthetic benchmark at the given scale. It
// panics on an unknown name; use Benchmarks for the valid set.
func Benchmark(name string, scale int) *Program {
	b, ok := bench.ByName(name)
	if !ok {
		panic(fmt.Sprintf("spt: unknown benchmark %q", name))
	}
	return b.Build(scale)
}

// BenchmarkCompileOptions returns the per-benchmark compiler configuration
// (gap gets the paper's raised 2500-instruction body budget).
func BenchmarkCompileOptions(name string) CompileOptions { return bench.CompilerOptions(name) }

// EvalBenchmark compiles and simulates one benchmark against its baseline.
func EvalBenchmark(name string, scale int, cfg MachineConfig) (*BenchRun, error) {
	return harness.RunBenchmark(name, scale, cfg)
}

// EvalAll evaluates every benchmark (the Figure 8/9 sweep).
func EvalAll(scale int, cfg MachineConfig) ([]*BenchRun, error) {
	return harness.RunAll(scale, cfg)
}
