package spt_test

import (
	"testing"

	"repro/internal/ir"
	"repro/spt"
)

func TestFacadeEndToEnd(t *testing.T) {
	prog := spt.Benchmark("parser", 1)
	ret1, steps, err := spt.Run(prog)
	if err != nil {
		t.Fatal(err)
	}
	if steps == 0 {
		t.Fatal("no work")
	}
	cres, err := spt.Compile(prog, spt.BenchmarkCompileOptions("parser"))
	if err != nil {
		t.Fatal(err)
	}
	ret2, _, err := spt.Run(cres.Program)
	if err != nil {
		t.Fatal(err)
	}
	if ret1 != ret2 {
		t.Fatalf("compilation changed result: %d vs %d", ret1, ret2)
	}
	base, err := spt.Simulate(prog, spt.BaselineMachine())
	if err != nil {
		t.Fatal(err)
	}
	fast, err := spt.Simulate(cres.Program, spt.DefaultMachine())
	if err != nil {
		t.Fatal(err)
	}
	if fast.Cycles >= base.Cycles {
		t.Errorf("no speedup: %d vs %d", fast.Cycles, base.Cycles)
	}
}

func TestFacadeCustomProgram(t *testing.T) {
	// A user-authored loop through the public entry points.
	b := ir.NewFuncBuilder("main", 0)
	i, s, c, z, v := b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg(), b.NewReg()
	b.Block("entry")
	b.MovI(i, 200)
	b.MovI(s, 0)
	b.MovI(z, 0)
	b.Jmp("head")
	b.Block("head")
	b.ALU(ir.CmpGT, c, i, z)
	b.Br(c, "body", "exit")
	b.Block("body")
	b.MulI(v, i, 3)
	for k := 0; k < 10; k++ {
		b.AddI(v, v, int64(k))
		b.MulI(v, v, 5)
	}
	b.ALU(ir.Xor, s, s, v)
	b.AddI(i, i, -1)
	b.Jmp("head")
	b.Block("exit")
	b.Ret(s)
	p := ir.NewProgramBuilder("main").AddFunc(b.Done()).Done()

	cres, err := spt.Compile(p, spt.DefaultCompileOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(cres.SelectedLoops()) == 0 {
		t.Fatal("custom loop not selected")
	}
	prof, err := spt.CollectProfile(p)
	if err != nil {
		t.Fatal(err)
	}
	if prof.TotalInstrs == 0 {
		t.Error("empty profile")
	}
}

func TestBenchmarksList(t *testing.T) {
	names := spt.Benchmarks()
	if len(names) != 10 {
		t.Fatalf("benchmarks = %d, want 10", len(names))
	}
	defer func() {
		if recover() == nil {
			t.Error("unknown benchmark did not panic")
		}
	}()
	spt.Benchmark("perlbmk", 1) // excluded in the paper; must panic
}

func TestEvalBenchmarkFacade(t *testing.T) {
	run, err := spt.EvalBenchmark("vortex", 1, spt.DefaultMachine())
	if err != nil {
		t.Fatal(err)
	}
	sp := run.Speedup()
	if sp < 0.97 || sp > 1.03 {
		t.Errorf("vortex speedup = %v, want ~1.0", sp)
	}
}

func TestOptimizeFacade(t *testing.T) {
	p := spt.Benchmark("gcc", 1)
	q := spt.Optimize(p)
	r1, s1, err := spt.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	r2, s2, err := spt.Run(q)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Errorf("Optimize changed the result: %d vs %d", r1, r2)
	}
	if s2 > s1 {
		t.Errorf("optimized program runs more instructions: %d > %d", s2, s1)
	}
}

func TestCompileSourceFacade(t *testing.T) {
	prog, err := spt.CompileSource(`
func main() {
    var i; var s = 0;
    for (i = 0; i < 100; i = i + 1) { s = s + i; }
    return s;
}`)
	if err != nil {
		t.Fatal(err)
	}
	ret, _, err := spt.Run(prog)
	if err != nil {
		t.Fatal(err)
	}
	if ret != 4950 {
		t.Errorf("Ret = %d, want 4950", ret)
	}
	if _, err := spt.CompileSource("not a program"); err == nil {
		t.Error("garbage source accepted")
	}
}

func TestRegionForkFacade(t *testing.T) {
	prog, err := spt.CompileSource(`
func work(x) {
    var a = x * 3;
    var k;
    for (k = 0; k < 6; k = k + 1) { a = a * 5 + k; }
    var b = x * 7;
    for (k = 0; k < 6; k = k + 1) { b = b * 3 + k; }
    return a ^ b;
}
func main() {
    var i; var s = 0;
    for (i = 120; i > 0; i = i - 1) { s = s ^ work(i); }
    return s;
}`)
	if err != nil {
		t.Fatal(err)
	}
	// Split work's entry at its midpoint (after the first chain).
	f := prog.Func("work")
	mid := len(f.Blocks[0].Instrs) / 2
	forked, err := spt.RegionFork(prog, "work", f.Blocks[0].Label, mid)
	if err != nil {
		t.Fatal(err)
	}
	r1, _, _ := spt.Run(prog)
	r2, _, _ := spt.Run(forked)
	if r1 != r2 {
		t.Fatalf("region fork changed semantics: %d vs %d", r1, r2)
	}
	if _, err := spt.RegionFork(prog, "nosuch", "entry", 1); err == nil {
		t.Error("unknown function accepted")
	}
}

func TestEvalAllFacade(t *testing.T) {
	if testing.Short() {
		t.Skip("full evaluation")
	}
	runs, err := spt.EvalAll(1, spt.DefaultMachine())
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 10 {
		t.Fatalf("runs = %d", len(runs))
	}
	var sum float64
	for _, r := range runs {
		sum += r.Speedup()
	}
	if avg := sum / 10; avg < 1.08 || avg > 1.35 {
		t.Errorf("average speedup %v outside the paper's band", avg)
	}
}
