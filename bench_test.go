package repro

// Benchmark harness: one testing.B benchmark per table/figure of the
// paper's evaluation (Section 5), plus raw substrate benchmarks. The
// figure benchmarks report the regenerated headline numbers through
// b.ReportMetric, so `go test -bench=. -benchmem` reproduces the paper's
// rows alongside Go-level performance data. EXPERIMENTS.md records the
// paper-vs-measured comparison in prose.

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"repro/internal/arch"
	"repro/internal/bench"
	"repro/internal/compiler"
	"repro/internal/harness"
	"repro/internal/interp"
	"repro/internal/nativecap"
	"repro/internal/trace"
	"repro/spt"
)

const benchScale = 1

var (
	runAllOnce sync.Once
	runAllRes  []*harness.BenchRun
	runAllErr  error
)

// evalAll runs the full 10-benchmark evaluation once and caches it across
// the figure benchmarks.
func evalAll(b *testing.B) []*harness.BenchRun {
	b.Helper()
	runAllOnce.Do(func() {
		runAllRes, runAllErr = harness.RunAll(benchScale, arch.DefaultConfig())
	})
	if runAllErr != nil {
		b.Fatal(runAllErr)
	}
	return runAllRes
}

// BenchmarkTable1Config regenerates Table 1 (the machine configuration).
func BenchmarkTable1Config(b *testing.B) {
	b.ReportAllocs()
	var rows [][2]string
	for i := 0; i < b.N; i++ {
		rows = harness.Table1(arch.DefaultConfig())
	}
	b.ReportMetric(float64(len(rows)), "config_rows")
}

// BenchmarkFig1ParserLoop regenerates the Figure 1 statistics: the parser
// list-free loop's speedup (paper: >40%), fast-commit ratio (paper: ~20%)
// and misspeculated-instruction ratio (paper: ~5%).
func BenchmarkFig1ParserLoop(b *testing.B) {
	b.ReportAllocs()
	var st harness.Fig1Stats
	for i := 0; i < b.N; i++ {
		var err error
		st, err = harness.Fig1Parser(benchScale)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*(st.LoopSpeedup-1), "loop_speedup_%")
	b.ReportMetric(100*st.FastCommitRatio, "fast_commit_%")
	b.ReportMetric(100*st.MisspecRatio, "misspec_%")
}

// BenchmarkFig6LoopCoverage regenerates Figure 6's accumulative
// loop-coverage curves and reports the total coverage extremes the paper
// highlights (most benchmarks >60%; vortex near zero).
func BenchmarkFig6LoopCoverage(b *testing.B) {
	b.ReportAllocs()
	var parserTotal, vortexTotal float64
	for i := 0; i < b.N; i++ {
		for _, name := range bench.Names() {
			pts, err := harness.LoopCoverage(name, benchScale)
			if err != nil {
				b.Fatal(err)
			}
			total := pts[len(pts)-1].Coverage
			switch name {
			case "parser":
				parserTotal = total
			case "vortex":
				vortexTotal = total
			}
		}
	}
	b.ReportMetric(100*parserTotal, "parser_loop_cov_%")
	b.ReportMetric(100*vortexTotal, "vortex_loop_cov_%")
}

// BenchmarkFig7SPTLoops regenerates Figure 7: SPT loop counts and coverage
// (paper: on average only ~32 SPT loops covering ~53% of execution).
func BenchmarkFig7SPTLoops(b *testing.B) {
	b.ReportAllocs()
	var loops float64
	var sptCov float64
	for i := 0; i < b.N; i++ {
		runs := evalAll(b)
		loops, sptCov = 0, 0
		for _, r := range runs {
			row := harness.Fig7(r)
			loops += float64(row.NumSPTLoops)
			sptCov += row.SPTCoverage
		}
		loops /= float64(len(runs))
		sptCov /= float64(len(runs))
	}
	b.ReportMetric(loops, "avg_spt_loops")
	b.ReportMetric(100*sptCov, "avg_spt_cov_%")
}

// BenchmarkFig8LoopPerf regenerates Figure 8: average SPT loop speedup
// (paper: ~35%), fast-commit ratio (paper: ~64%) and misspeculation ratio
// (paper: ~1.2%).
func BenchmarkFig8LoopPerf(b *testing.B) {
	b.ReportAllocs()
	var spd, fc, ms, n float64
	for i := 0; i < b.N; i++ {
		spd, fc, ms, n = 0, 0, 0, 0
		for _, r := range evalAll(b) {
			row := harness.Fig8(r)
			if row.LoopsMeasured == 0 {
				continue
			}
			spd += row.LoopSpeedup
			fc += row.FastCommitRatio
			ms += row.MisspecRatio
			n++
		}
	}
	b.ReportMetric(100*(spd/n-1), "avg_loop_speedup_%")
	b.ReportMetric(100*fc/n, "avg_fast_commit_%")
	b.ReportMetric(100*ms/n, "avg_misspec_%")
}

// BenchmarkFig9ProgramSpeedup regenerates Figure 9: the overall program
// speedup (paper: 15.6% average) and its execution/pipeline-stall/d-cache
// breakdown (paper: 8.4% / 1.7% / 5.5%).
func BenchmarkFig9ProgramSpeedup(b *testing.B) {
	b.ReportAllocs()
	var avg harness.Fig9Row
	for i := 0; i < b.N; i++ {
		var rows []harness.Fig9Row
		for _, r := range evalAll(b) {
			rows = append(rows, harness.Fig9(r))
		}
		avg = harness.Average(rows)
	}
	b.ReportMetric(100*(avg.Speedup-1), "avg_speedup_%")
	b.ReportMetric(100*avg.ExecPart, "exec_part_%")
	b.ReportMetric(100*avg.PipePart, "pipe_part_%")
	b.ReportMetric(100*avg.DcachePart, "dcache_part_%")
}

// BenchmarkFig9PerBenchmark reports each benchmark's program speedup as a
// sub-benchmark (the individual bars of Figure 9).
func BenchmarkFig9PerBenchmark(b *testing.B) {
	b.ReportAllocs()
	for _, name := range bench.Names() {
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			var sp float64
			for i := 0; i < b.N; i++ {
				for _, r := range evalAll(b) {
					if r.Name == name {
						sp = r.Speedup()
					}
				}
			}
			b.ReportMetric(100*(sp-1), "speedup_%")
		})
	}
}

// BenchmarkAblationRecovery compares SRX+FC against conventional full
// squash (the Table 1 recovery default versus the alternative).
func BenchmarkAblationRecovery(b *testing.B) {
	b.ReportAllocs()
	var srx, squash float64
	for i := 0; i < b.N; i++ {
		rows, err := harness.AblateRecovery("parser", benchScale)
		if err != nil {
			b.Fatal(err)
		}
		srx, squash = rows[0].Speedup, rows[1].Speedup
	}
	b.ReportMetric(100*(srx-1), "srxfc_speedup_%")
	b.ReportMetric(100*(squash-1), "squash_speedup_%")
}

// BenchmarkAblationRegCheck compares value-based against update-based
// register dependence checking (Table 1 default: value-based).
func BenchmarkAblationRegCheck(b *testing.B) {
	b.ReportAllocs()
	var val, upd float64
	for i := 0; i < b.N; i++ {
		rows, err := harness.AblateRegCheck("mcf", benchScale)
		if err != nil {
			b.Fatal(err)
		}
		val, upd = rows[0].Speedup, rows[1].Speedup
	}
	b.ReportMetric(100*(val-1), "value_based_speedup_%")
	b.ReportMetric(100*(upd-1), "update_based_speedup_%")
}

// BenchmarkAblationSRB sweeps the speculation result buffer size.
func BenchmarkAblationSRB(b *testing.B) {
	b.ReportAllocs()
	sizes := []int{16, 64, 256, 1024}
	var spd []float64
	for i := 0; i < b.N; i++ {
		rows, err := harness.AblateSRB("parser", benchScale, sizes)
		if err != nil {
			b.Fatal(err)
		}
		spd = spd[:0]
		for _, r := range rows {
			spd = append(spd, r.Speedup)
		}
	}
	b.ReportMetric(100*(spd[0]-1), "srb16_speedup_%")
	b.ReportMetric(100*(spd[len(spd)-1]-1), "srb1024_speedup_%")
}

// ---- substrate performance benchmarks ----

// BenchmarkInterpreter measures raw sequential interpretation throughput.
func BenchmarkInterpreter(b *testing.B) {
	b.ReportAllocs()
	prog := spt.Benchmark("gzip", benchScale)
	lp, err := interp.Load(prog)
	if err != nil {
		b.Fatal(err)
	}
	var steps int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := interp.New(lp)
		res, err := m.Run()
		if err != nil {
			b.Fatal(err)
		}
		steps = res.Steps
	}
	b.SetBytes(steps) // "bytes" = dynamic instructions per run
}

// BenchmarkSimulator measures the trace-driven SPT machine's throughput.
func BenchmarkSimulator(b *testing.B) {
	b.ReportAllocs()
	prog := spt.Benchmark("gzip", benchScale)
	cres, err := compiler.Compile(prog, bench.CompilerOptions("gzip"))
	if err != nil {
		b.Fatal(err)
	}
	lp, err := interp.Load(cres.Program)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := arch.NewMachine(lp, arch.DefaultConfig()).Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTraceRecord measures capturing an architectural trace into the
// columnar recording: one interpreter pass through a Recorder per
// iteration. "Bytes" is the resident size of the finished recording, so
// MB/s is encode throughput.
func BenchmarkTraceRecord(b *testing.B) {
	b.ReportAllocs()
	prog := spt.Benchmark("gzip", benchScale)
	lp, err := interp.Load(prog)
	if err != nil {
		b.Fatal(err)
	}
	var size int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec, err := arch.RecordTrace(context.Background(), lp, 0)
		if err != nil {
			b.Fatal(err)
		}
		size = rec.Bytes()
		rec.Release()
	}
	b.SetBytes(size)
}

// BenchmarkTraceCapture measures interpreter-driven trace capture of the
// Figure 1 parser benchmark — the baseline the native path is judged
// against. "Bytes" is the finished recording's resident size, so MB/s is
// capture throughput.
func BenchmarkTraceCapture(b *testing.B) {
	b.ReportAllocs()
	prog := spt.Benchmark("parser", benchScale)
	lp, err := interp.Load(prog)
	if err != nil {
		b.Fatal(err)
	}
	var size int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec, err := arch.RecordTrace(context.Background(), lp, 0)
		if err != nil {
			b.Fatal(err)
		}
		size = rec.Bytes()
		rec.Release()
	}
	b.SetBytes(size)
}

// BenchmarkNativeCapture measures the same capture through a compiled
// native module (internal/nativecap): the warm-up iteration builds and
// differentially verifies the module, then each timed iteration is one
// worker round-trip producing a Recording bit-identical to the
// interpreter's. Compare MB/s against BenchmarkTraceCapture.
func BenchmarkNativeCapture(b *testing.B) {
	b.ReportAllocs()
	prog := spt.Benchmark("parser", benchScale)
	lp, err := interp.Load(prog)
	if err != nil {
		b.Fatal(err)
	}
	nc, err := nativecap.New(nativecap.Options{Dir: b.TempDir()})
	if err != nil {
		b.Fatal(err)
	}
	defer nc.Close()
	rec, err := nc.Capture(context.Background(), prog, lp, 0)
	if err != nil {
		b.Fatal(err)
	}
	size := rec.Bytes()
	rec.Release()
	if s := nc.Stats(); s.Native == 0 {
		b.Skipf("native capture unavailable, interpreter fallback active (stats %+v)", s)
	}
	b.SetBytes(size)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec, err := nc.Capture(context.Background(), prog, lp, 0)
		if err != nil {
			b.Fatal(err)
		}
		rec.Release()
	}
}

// BenchmarkTraceReplay measures fanning a captured recording back out:
// record once, then replay the full event stream into a handler per
// iteration. MB/s here is decode throughput — the per-config cost a
// sweep pays instead of re-interpreting.
func BenchmarkTraceReplay(b *testing.B) {
	b.ReportAllocs()
	prog := spt.Benchmark("gzip", benchScale)
	lp, err := interp.Load(prog)
	if err != nil {
		b.Fatal(err)
	}
	rec, err := arch.RecordTrace(context.Background(), lp, 0)
	if err != nil {
		b.Fatal(err)
	}
	defer rec.Release()
	var seen int64
	sink := trace.HandlerFunc(func(ev *trace.Event) { seen++ })
	b.SetBytes(rec.Bytes())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seen = 0
		if err := rec.Replay(context.Background(), sink); err != nil {
			b.Fatal(err)
		}
	}
	if seen != rec.Len() {
		b.Fatalf("replayed %d events; recording holds %d", seen, rec.Len())
	}
}

// BenchmarkSweepBroadcast measures the vectorized replay path a batched
// sweep rides: one captured recording drives N variant engines through a
// single broadcast decode pass (arch.RunRecordedMulti). Against
// BenchmarkTraceReplay, ns/op here shows how the per-variant cost falls as
// the decode is amortized across the bank; "bytes" is the recording size,
// so MB/s is aggregate decode-side throughput per pass.
func BenchmarkSweepBroadcast(b *testing.B) {
	prog := spt.Benchmark("parser", benchScale)
	cres, err := compiler.Compile(prog, bench.CompilerOptions("parser"))
	if err != nil {
		b.Fatal(err)
	}
	lp, err := interp.Load(cres.Program)
	if err != nil {
		b.Fatal(err)
	}
	rec, err := arch.RecordTrace(context.Background(), lp, 0)
	if err != nil {
		b.Fatal(err)
	}
	defer rec.Release()
	srbSizes := []int{16, 32, 64, 128, 256, 512, 1024, 2048}
	for _, n := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("variants=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			cfgs := make([]arch.Config, n)
			for i := range cfgs {
				cfgs[i] = arch.DefaultConfig()
				cfgs[i].SRBSize = srbSizes[i]
			}
			b.SetBytes(rec.Bytes())
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				stats, errs := arch.RunRecordedMulti(context.Background(), lp, rec, cfgs)
				for v := range cfgs {
					if errs[v] != nil {
						b.Fatal(errs[v])
					}
					if stats[v] == nil || stats[v].Cycles <= 0 {
						b.Fatalf("variant %d returned no cycles", v)
					}
				}
			}
		})
	}
}

// BenchmarkMultiSpec measures the N-core CMP speculation engine: the same
// compiled benchmark simulated with 2, 4 and 8 speculation cores under the
// default in-order next-iteration scheduler. ns/op tracks how simulation
// cost grows as the in-flight chain deepens; the reported metrics show what
// the chain buys (cycles) and how hard it works (chain spawns per run).
func BenchmarkMultiSpec(b *testing.B) {
	prog := spt.Benchmark("parser", benchScale)
	cres, err := compiler.Compile(prog, bench.CompilerOptions("parser"))
	if err != nil {
		b.Fatal(err)
	}
	lp, err := interp.Load(cres.Program)
	if err != nil {
		b.Fatal(err)
	}
	for _, n := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("cores=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			cfg := arch.DefaultConfig()
			cfg.Cores = n
			var st *arch.RunStats
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				st, err = arch.NewMachine(lp, cfg).Run()
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(st.Cycles), "cycles")
			b.ReportMetric(float64(st.ChainSpawns), "chain_spawns")
		})
	}
}

// BenchmarkCompiler measures the two-pass cost-driven compilation itself.
func BenchmarkCompiler(b *testing.B) {
	b.ReportAllocs()
	prog := spt.Benchmark("gcc", benchScale)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := compiler.Compile(prog, bench.CompilerOptions("gcc")); err != nil {
			b.Fatal(err)
		}
	}
}
